// End-to-end fault-tolerance specification (test-first): the durable
// checkpoint store (atomic spills, verified reloads, epoch fallback,
// restart recovery), incremental rollback snapshots, and the forecast
// server's retry ladder (worker quarantine, canary reinstatement,
// durable-epoch replay, retry/deadline budgets).
//
// Every suite here is named Durable* — tests/CMakeLists.txt keys the
// tier1-durability label (and the CI chaos gate) off that prefix.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/multidomain.hpp"
#include "src/core/diagnostics.hpp"
#include "src/io/durable_blob.hpp"
#include "src/resilience/snapshot.hpp"
#include "src/server/forecast_server.hpp"

namespace asuca::server {
namespace {

namespace fs = std::filesystem;

using resilience::Fault;
using resilience::FaultKind;

struct TempDir {
    fs::path path;
    explicit TempDir(const char* name)
        : path(fs::temp_directory_path() / name) {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
    std::string str() const { return path.string(); }
    std::string file(const char* name) const {
        return (path / name).string();
    }
};

void expect_bitwise(const State<double>& a, const State<double>& b) {
    EXPECT_EQ(max_abs_diff(a.rho, b.rho), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhou, b.rhou), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhov, b.rhov), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhow, b.rhow), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhotheta, b.rhotheta), 0.0);
    EXPECT_EQ(max_abs_diff(a.p, b.p), 0.0);
    ASSERT_EQ(a.tracers.size(), b.tracers.size());
    for (std::size_t n = 0; n < a.tracers.size(); ++n) {
        EXPECT_EQ(max_abs_diff(a.tracers[n], b.tracers[n]), 0.0);
    }
}

ScenarioSpec small_spec(int steps = 2) {
    ScenarioSpec s;
    s.scenario = "warm_bubble";
    s.nx = 16;
    s.ny = 16;
    s.nz = 12;
    s.steps = steps;
    return s;
}

/// Wrap a spec the way an out-of-process client's frame would arrive —
/// every in-repo caller speaks the wire envelope API.
wire::ForecastRequestV1 envelope(const ScenarioSpec& spec) {
    wire::ForecastRequestV1 req;
    req.spec = spec;
    return req;
}

ScenarioSpec decomposed_spec(int steps = 2) {
    ScenarioSpec s = small_spec(steps);
    s.px = 2;
    s.py = 2;
    s.overlap = "split";
    return s;
}

/// A real v3 checkpoint blob (the verifier walks the actual format, so
/// tests feed it actual serialized states, not synthetic bytes).
std::string make_blob() {
    const ScenarioSpec spec = canonicalize(small_spec());
    AsucaModel<double> model(build_config(spec));
    init_model(model, spec);
    model.run(1);
    CheckpointStore mem;
    mem.capture("blob", model);
    return *mem.get("blob");
}

// ---------------------------------------------------------------------
// durable_blob.hpp: atomic file I/O and structural blob verification.
// ---------------------------------------------------------------------

TEST(DurableBlobIo, AtomicWriteRoundTripsBinaryAndReplaces) {
    TempDir tmp("asuca_durable_io");
    const std::string path = tmp.file("x.bin");
    const std::string binary("\x00\x01\xff\x7f ckpt", 9);
    io::write_file_atomic(path, binary);
    EXPECT_EQ(io::read_file(path), binary);
    io::write_file_atomic(path, "replacement");
    EXPECT_EQ(io::read_file(path), "replacement");
    // The temp file of the write-rename protocol must not survive.
    std::size_t files = 0;
    for ([[maybe_unused]] const auto& e : fs::directory_iterator(tmp.path))
        ++files;
    EXPECT_EQ(files, 1u);
    EXPECT_THROW(io::read_file(tmp.file("missing.bin")), Error);
}

TEST(DurableBlobVerify, AcceptsIntactRejectsEveryDamageMode) {
    const std::string good = make_blob();
    std::string why;
    EXPECT_TRUE(io::verify_checkpoint_blob(good, &why)) << why;

    std::string flipped = good;
    flipped[flipped.size() / 2] ^= 0x01;  // at-rest bit rot
    EXPECT_FALSE(io::verify_checkpoint_blob(flipped, &why));
    EXPECT_FALSE(why.empty());

    std::string truncated = good.substr(0, good.size() / 2);  // torn write
    EXPECT_FALSE(io::verify_checkpoint_blob(truncated));

    EXPECT_FALSE(io::verify_checkpoint_blob(""));
    EXPECT_FALSE(io::verify_checkpoint_blob("not a checkpoint at all"));
    EXPECT_FALSE(io::verify_checkpoint_blob(good + "trailing"));
}

// ---------------------------------------------------------------------
// DurableCheckpointStore: spills, verified reloads, epochs, recovery.
// ---------------------------------------------------------------------

TEST(DurableStore, PutSpillsToDiskAndGetServesIdenticalBytes) {
    TempDir tmp("asuca_durable_store_rt");
    const std::string blob = make_blob();
    DurableCheckpointStore store({tmp.str(), 4, 2});
    store.put("analysis", blob);
    EXPECT_TRUE(store.contains("analysis"));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.latest_epoch("analysis"), 1);
    // The on-disk epoch is the committed bytes, verifiable standalone.
    const std::string on_disk =
        io::read_file(store.epoch_path("analysis", 1));
    EXPECT_EQ(on_disk, blob);
    EXPECT_TRUE(io::verify_checkpoint_blob(on_disk));
    // RAM hit and (after an eviction) verified disk reload agree.
    ASSERT_NE(store.get("analysis"), nullptr);
    EXPECT_EQ(*store.get("analysis"), blob);
    store.drop_ram("analysis");
    ASSERT_NE(store.get("analysis"), nullptr);
    EXPECT_EQ(*store.get("analysis"), blob);
}

TEST(DurableStore, RestartRecoversIndexAndContinuesEpochNumbering) {
    TempDir tmp("asuca_durable_store_restart");
    const std::string blob = make_blob();
    {
        DurableCheckpointStore first({tmp.str(), 4, 3});
        first.put("analysis", blob);
        first.put("analysis", blob);
    }  // the process "crashes"; only the directory survives
    DurableCheckpointStore second({tmp.str(), 4, 3});
    EXPECT_TRUE(second.contains("analysis"));
    EXPECT_EQ(second.size(), 1u);
    EXPECT_EQ(second.latest_epoch("analysis"), 2);
    ASSERT_NE(second.get("analysis"), nullptr);  // cold cache: disk path
    EXPECT_EQ(*second.get("analysis"), blob);
    second.put("analysis", blob);  // numbering continues, no collision
    EXPECT_EQ(second.latest_epoch("analysis"), 3);
}

TEST(DurableStore, EpochRetentionPrunesBeyondKeepEpochs) {
    TempDir tmp("asuca_durable_store_epochs");
    const std::string blob = make_blob();
    DurableCheckpointStore store({tmp.str(), 4, 2});
    store.put("analysis", blob);
    store.put("analysis", blob);
    const std::string epoch1 = store.epoch_path("analysis", 1);
    store.put("analysis", blob);
    EXPECT_EQ(store.latest_epoch("analysis"), 3);
    EXPECT_FALSE(fs::exists(epoch1));  // pruned
    EXPECT_TRUE(fs::exists(store.epoch_path("analysis", 2)));
    EXPECT_TRUE(fs::exists(store.epoch_path("analysis", 3)));
}

TEST(DurableStore, LruEvictionStillServesEvictedNamesFromDisk) {
    TempDir tmp("asuca_durable_store_lru");
    const std::string blob = make_blob();
    DurableCheckpointStore store({tmp.str(), /*ram_entries=*/1, 2});
    store.put("a", blob);
    store.put("b", blob);  // evicts "a" from RAM, never from disk
    ASSERT_NE(store.get("a"), nullptr);
    EXPECT_EQ(*store.get("a"), blob);
    EXPECT_EQ(store.size(), 2u);
}

TEST(DurableStore, CorruptedNewestEpochFallsBackToThePreviousOne) {
    const std::string blob = make_blob();
    for (const bool truncate : {false, true}) {
        TempDir tmp("asuca_durable_store_corrupt");
        DurableCheckpointStore store({tmp.str(), 4, 2});
        store.put("analysis", blob);
        store.put("analysis", blob);
        ASSERT_TRUE(store.corrupt_latest_epoch("analysis", truncate));
        store.drop_ram("analysis");  // force the verified disk path
        // The damaged epoch 2 is rejected wholesale; epoch 1 serves the
        // exact committed bytes — the reload mutated nothing.
        const CheckpointStore::Blob got = store.get("analysis");
        ASSERT_NE(got, nullptr) << (truncate ? "truncate" : "bit-flip");
        EXPECT_EQ(*got, blob);
        EXPECT_FALSE(io::verify_checkpoint_blob(
            io::read_file(store.epoch_path("analysis", 2))));
    }
}

TEST(DurableStore, EveryEpochDamagedFailsTheGetNotTheStore) {
    TempDir tmp("asuca_durable_store_allbad");
    const std::string blob = make_blob();
    DurableCheckpointStore store({tmp.str(), 4, /*keep_epochs=*/1});
    store.put("analysis", blob);
    ASSERT_TRUE(store.corrupt_latest_epoch("analysis"));
    store.drop_ram("analysis");
    EXPECT_TRUE(store.contains("analysis"));  // the name is still known...
    EXPECT_EQ(store.get("analysis"), nullptr);  // ...but nothing verifies
    store.put("analysis", blob);  // a fresh put heals the name
    EXPECT_NE(store.get("analysis"), nullptr);
}

// ---------------------------------------------------------------------
// Incremental rollback snapshots (j-slab dirty tracking).
// ---------------------------------------------------------------------

TEST(DurableSnapshot, IncrementalCaptureCopiesOnlyDirtySlabs) {
    const ScenarioSpec spec = canonicalize(small_spec());
    AsucaModel<double> model(build_config(spec));
    init_model(model, spec);
    State<double> s = model.state();

    resilience::RankFieldCopy<double> copy;
    copy.set_incremental(true);
    const std::size_t full = copy.capture_dynamic(s);
    EXPECT_GT(full, 0u);
    EXPECT_EQ(copy.capture_dynamic(s), 0u);  // unchanged: nothing copied

    // One touched cell dirties exactly one j-slab of one field.
    s.rhotheta(2, 3, 4) += 1.0;
    const auto& th = s.rhotheta;
    const std::size_t slab_bytes =
        th.size() / static_cast<std::size_t>(th.padded_extents().y) *
        sizeof(double);
    EXPECT_EQ(copy.capture_dynamic(s), slab_bytes);

    // The incremental buffer restores the full state bitwise.
    State<double> dst = model.state();
    dst.rhou(1, 1, 1) = 42.0;  // stale bytes the restore must overwrite
    copy.restore_dynamic(dst);
    expect_bitwise(dst, s);
}

TEST(DurableSnapshot, FullCopyFallbackCopiesEverythingEveryRound) {
    const ScenarioSpec spec = canonicalize(small_spec());
    AsucaModel<double> model(build_config(spec));
    init_model(model, spec);
    State<double> s = model.state();

    resilience::RankFieldCopy<double> copy;  // incremental OFF (default)
    const std::size_t full = copy.capture_dynamic(s);
    EXPECT_GT(full, 0u);
    EXPECT_EQ(copy.capture_dynamic(s), full);  // no dirty tracking
    State<double> dst = model.state();
    copy.restore_dynamic(dst);
    expect_bitwise(dst, s);
}

TEST(DurableSnapshot, SnapshotterReportsLocalizedRoundsAsFewerBytes) {
    const ScenarioSpec spec = canonicalize(small_spec());
    AsucaModel<double> model(build_config(spec));
    init_model(model, spec);
    State<double> s = model.state();
    const auto source = [&](Index) -> const State<double>& { return s; };

    resilience::AsyncSnapshotter<double> snap;
    snap.configure(1, source, /*incremental=*/true);
    snap.capture_sync(source, 0, 0.0);
    const std::size_t first = snap.last_round_bytes();
    EXPECT_GT(first, 0u);  // fresh buffers: a full copy

    s.rhotheta(5, 5, 5) += 0.25;  // localized update
    snap.capture_sync(source, 1, 0.0);
    const std::size_t localized = snap.last_round_bytes();
    EXPECT_GT(localized, 0u);
    EXPECT_LT(localized, first / 4);  // copies slabs, not the state

    State<double> dst = model.state();
    snap.restore([&](Index) -> State<double>& { return dst; });
    expect_bitwise(dst, s);
}

TEST(DurableSnapshot, GuardedRecoveryIsBitwiseWithAndWithoutIncremental) {
    // The rollback-and-replay guarantee must hold identically for
    // incremental snapshots and the tested full-copy fallback: an
    // injected transient fault recovers to the clean run's exact bits.
    const ScenarioSpec spec = canonicalize(decomposed_spec(2));
    const ForecastResult clean = run_forecast(spec, nullptr, true);
    ASSERT_TRUE(clean.ok()) << clean.error;

    const ModelConfig<double> cfg = build_config(spec);
    AsucaModel<double> seed_model(cfg);
    init_model(seed_model, spec);
    for (const bool incremental : {false, true}) {
        cluster::MultiDomainConfig md;
        md.overlap = cluster::OverlapMode::Split;
        md.resilience.enabled = true;
        md.resilience.checkpoint_interval = 1;
        md.resilience.incremental_snapshots = incremental;
        md.resilience.faults.push_back(
            {FaultKind::HaloCorrupt, 1, 1, VarId::RhoTheta, 0, 0, 0, {}});
        cluster::MultiDomainRunner<double> runner(
            cfg.grid, spec.px, spec.py, cfg.species, cfg.stepper, md);
        runner.scatter(seed_model.state());
        runner.advance(spec.steps);
        State<double> got(seed_model.grid(), cfg.species);
        got = seed_model.state();
        runner.gather(got);
        seed_model.stepper().apply_state_bcs(got);
        expect_bitwise(*clean.state, got);
        EXPECT_EQ(runner.injector().fired_count(), 1)
            << (incremental ? "incremental" : "full-copy");
    }
}

// ---------------------------------------------------------------------
// The server retry ladder: quarantine, canary reinstatement, durable
// replay, retry/deadline budgets, and injected request faults.
// ---------------------------------------------------------------------

ServerConfig ladder_config(const std::string& store_dir = "") {
    ServerConfig cfg;
    cfg.n_workers = 1;  // deterministic: worker 0 pops every job
    cfg.keep_state = true;
    cfg.degrade_under_load = false;
    cfg.store_dir = store_dir;
    cfg.retry_backoff = std::chrono::milliseconds(1);
    cfg.canary_backoff = std::chrono::milliseconds(1);
    return cfg;
}

TEST(DurableLadder, PoisonedWorkerEnsembleMatchesCleanRunBitwise) {
    TempDir tmp("asuca_durable_ladder_poison");
    const ScenarioSpec spec = canonicalize(small_spec());
    AsucaModel<double> analysis(build_config(spec));
    init_model(analysis, spec);
    analysis.run(1);

    EnsembleRequest req;
    req.base = spec;
    req.base.warm_start = "analysis";
    req.n_members = 2;
    req.seed = 7;
    req.amplitude = 1.0e-3;

    // Reference: the same ensemble on a healthy in-memory server.
    std::vector<std::shared_ptr<const State<double>>> want;
    {
        ForecastServer server(ladder_config());
        server.checkpoints().capture("analysis", analysis);
        for (auto& h : server.submit_ensemble(req)) {
            const ForecastResult& res = h.wait();
            ASSERT_TRUE(res.ok()) << res.error;
            want.push_back(res.state);
        }
    }

    // Faulted: worker 0's first popped job throws WorkerPoisonError.
    // The ladder must quarantine the slot, replay the member from the
    // DURABLE store, reinstate the slot via a clean canary, and land on
    // exactly the reference bits — the request never observes the fault.
    ServerConfig cfg = ladder_config(tmp.str());
    cfg.faults.push_back({FaultKind::WorkerPoison, 0, 0});
    ForecastServer server(cfg);
    ASSERT_NE(server.durable_store(), nullptr);
    server.checkpoints().capture("analysis", analysis);
    const auto handles = server.submit_ensemble(req);
    for (std::size_t m = 0; m < handles.size(); ++m) {
        const ForecastResult& res = handles[m].wait();
        ASSERT_TRUE(res.ok()) << res.error;
        ASSERT_NE(res.state, nullptr);
        expect_bitwise(*want[m], *res.state);
    }
    server.shutdown();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.retried, 1u);
    EXPECT_EQ(stats.quarantined, 1u);
    EXPECT_EQ(stats.reinstated, 1u);  // the canary brought the slot back
    EXPECT_FALSE(server.worker_quarantined(0));
}

TEST(DurableLadder, CorruptedEpochReplaysFromThePriorDurableEpoch) {
    TempDir tmp("asuca_durable_ladder_epoch");
    const ScenarioSpec spec = canonicalize(small_spec());
    AsucaModel<double> reference(build_config(spec));
    init_model(reference, spec);
    reference.run(1);

    ServerConfig cfg = ladder_config(tmp.str());
    cfg.faults.push_back({FaultKind::CheckpointCorrupt, 0, 0});
    ForecastServer server(cfg);
    server.checkpoints().capture("analysis", reference);  // epoch 1
    server.checkpoints().capture("analysis", reference);  // epoch 2
    DurableCheckpointStore* store = server.durable_store();
    ASSERT_NE(store, nullptr);
    ASSERT_EQ(store->latest_epoch("analysis"), 2);

    ScenarioSpec warm = spec;
    warm.warm_start = "analysis";
    warm.steps = 2;
    const ForecastResult& res = server.submit(envelope(warm)).wait();
    ASSERT_TRUE(res.ok()) << res.error;
    ASSERT_NE(res.state, nullptr);

    // The injected fault really damaged epoch 2 on disk...
    EXPECT_FALSE(io::verify_checkpoint_blob(
        io::read_file(store->epoch_path("analysis", 2))));
    // ...yet the request continued bitwise from the surviving epoch, and
    // nothing escalated to the worker-level ladder.
    reference.run(2);
    expect_bitwise(reference.state(), *res.state);
    server.shutdown();
    EXPECT_EQ(server.stats().failed, 0u);
    EXPECT_EQ(server.stats().quarantined, 0u);
}

TEST(DurableLadder, TransientInjectionRecoversInlineWithoutTheLadder) {
    // "halo" and "nan" are transient: MultiDomainRunner's rollback
    // recovers them inside advance(); the server never sees a fault.
    const ScenarioSpec clean_spec = canonicalize(decomposed_spec(2));
    const ForecastResult clean = run_forecast(clean_spec, nullptr, true);
    ASSERT_TRUE(clean.ok()) << clean.error;

    ForecastServer server(ladder_config());
    for (const char* inject : {"halo", "nan"}) {
        ScenarioSpec s = decomposed_spec(2);
        s.inject = inject;
        const ForecastResult& res = server.submit(envelope(s)).wait();
        ASSERT_TRUE(res.ok()) << inject << ": " << res.error;
        ASSERT_NE(res.state, nullptr);
        expect_bitwise(*clean.state, *res.state);
    }
    server.shutdown();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_EQ(stats.retried, 0u);
    EXPECT_EQ(stats.quarantined, 0u);
}

TEST(DurableLadder, FatalStallQuarantinesRetriesAndMatchesCleanBitwise) {
    // "stall" blows the halo deadline: FatalFaultError with suspect-rank
    // attribution reaches the worker, which quarantines its slot and
    // re-dispatches the request; the retry runs the clean product.
    const ScenarioSpec clean_spec = canonicalize(decomposed_spec(2));
    const ForecastResult clean = run_forecast(clean_spec, nullptr, true);
    ASSERT_TRUE(clean.ok()) << clean.error;

    ForecastServer server(ladder_config());
    ScenarioSpec s = decomposed_spec(2);
    s.inject = "stall";
    const ForecastResult& res = server.submit(envelope(s)).wait();
    ASSERT_TRUE(res.ok()) << res.error;
    ASSERT_NE(res.state, nullptr);
    expect_bitwise(*clean.state, *res.state);
    EXPECT_TRUE(res.executed.inject.empty());  // the retry ran clean
    server.shutdown();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.retried, 1u);
    EXPECT_EQ(stats.quarantined, 1u);
    EXPECT_EQ(stats.reinstated, 1u);
}

TEST(DurableLadder, RetryBudgetExhaustionFailsLoudlyAndServerRecovers) {
    ServerConfig cfg = ladder_config();
    cfg.max_request_retries = 0;  // no second chances
    cfg.faults.push_back({FaultKind::WorkerPoison, 0, 0});
    ForecastServer server(cfg);
    // Hold the handle: a failed entry leaves the result cache, so the
    // handle is what keeps the result alive past wait().
    const ForecastHandle h = server.submit(envelope(small_spec()));
    const ForecastResult& res = h.wait();
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.code, ErrorCode::internal_fault);
    EXPECT_NE(res.error.find("retries exhausted"), std::string::npos);
    EXPECT_NE(res.error.find("poison"), std::string::npos);
    // The slot still went through quarantine + canary, so the server
    // keeps serving — failure of one request is not failure of service.
    const ForecastResult& good = server.submit(envelope(small_spec(3))).wait();
    EXPECT_TRUE(good.ok()) << good.error;
    server.shutdown();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.quarantined, 1u);
}

TEST(DurableLadder, DeadlineBudgetStopsTheRetryLadder) {
    ServerConfig cfg = ladder_config();
    cfg.max_request_retries = 5;
    cfg.request_deadline = std::chrono::milliseconds(60);
    cfg.retry_backoff = std::chrono::milliseconds(120);  // > the deadline
    cfg.faults.push_back({FaultKind::WorkerPoison, 0, 0});
    cfg.faults.push_back({FaultKind::WorkerPoison, 0, 1});
    ForecastServer server(cfg);
    // Attempt 1 is poisoned and re-dispatched (the deadline has not hit
    // yet); by attempt 2's poison the backoff spent the budget, so the
    // ladder must stop even though 4 retries formally remain.
    const ForecastHandle h = server.submit(envelope(small_spec()));
    const ForecastResult& res = h.wait();
    EXPECT_FALSE(res.ok());
    // The taxonomy distinguishes WHY the ladder stopped: the budget ran
    // out mid-fault, so the typed code is deadline_exceeded, not the
    // retries-exhausted internal_fault.
    EXPECT_EQ(res.code, ErrorCode::deadline_exceeded);
    EXPECT_NE(res.error.find("deadline exceeded"), std::string::npos);
    server.shutdown();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.retried, 1u);
    EXPECT_EQ(stats.failed, 1u);
}

}  // namespace
}  // namespace asuca::server
