// Tests for the water-species registry and the prognostic state container.
#include <gtest/gtest.h>

#include "src/core/state.hpp"

namespace asuca {
namespace {

TEST(Species, WarmRainSetMatchesPaperConfiguration) {
    const auto set = SpeciesSet::warm_rain();
    EXPECT_EQ(set.count(), 3u);
    EXPECT_TRUE(set.contains(Species::Vapor));
    EXPECT_TRUE(set.contains(Species::Cloud));
    EXPECT_TRUE(set.contains(Species::Rain));
    EXPECT_FALSE(set.contains(Species::Snow));
}

TEST(Species, FullSetCarriesAllSevenCategories) {
    // Paper Sec. II: alpha = v, c, r, i, s, g, h.
    const auto set = SpeciesSet::full();
    EXPECT_EQ(set.count(), 7u);
    for (int n = 0; n < kNumSpecies; ++n) {
        EXPECT_TRUE(set.contains(static_cast<Species>(n)));
    }
}

TEST(Species, SlotsAreStable) {
    const auto set = SpeciesSet::warm_rain();
    EXPECT_EQ(set.slot(Species::Vapor), 0u);
    EXPECT_EQ(set.slot(Species::Cloud), 1u);
    EXPECT_EQ(set.slot(Species::Rain), 2u);
    EXPECT_EQ(set.at(2), Species::Rain);
}

TEST(Species, FallSpeedOnlyForPrecipitating) {
    EXPECT_FALSE(has_fall_speed(Species::Vapor));
    EXPECT_FALSE(has_fall_speed(Species::Cloud));
    EXPECT_TRUE(has_fall_speed(Species::Rain));
    EXPECT_TRUE(has_fall_speed(Species::Snow));
    EXPECT_TRUE(has_fall_speed(Species::Graupel));
    EXPECT_TRUE(has_fall_speed(Species::Hail));
}

TEST(State, StaggeredExtentsFollowArakawaC) {
    GridSpec spec;
    spec.nx = 8;
    spec.ny = 6;
    spec.nz = 4;
    Grid<double> grid(spec);
    State<double> s(grid, SpeciesSet::warm_rain());
    EXPECT_EQ(s.rho.extents(), (Int3{8, 6, 4}));
    EXPECT_EQ(s.rhou.extents(), (Int3{9, 6, 4}));   // x faces
    EXPECT_EQ(s.rhov.extents(), (Int3{8, 7, 4}));   // y faces
    EXPECT_EQ(s.rhow.extents(), (Int3{8, 6, 5}));   // z faces (Lorenz)
    EXPECT_EQ(s.tracers.size(), 3u);
    EXPECT_EQ(s.num_prognostics(), 8u);
}

TEST(State, FieldLookupByVarId) {
    GridSpec spec;
    spec.nx = 4;
    spec.ny = 4;
    spec.nz = 4;
    Grid<double> grid(spec);
    State<double> s(grid, SpeciesSet::warm_rain());
    s.rhou(1, 2, 3) = 42.0;
    EXPECT_EQ(s.field(VarId::RhoU)(1, 2, 3), 42.0);
    s.tracer(Species::Rain)(0, 0, 0) = 7.0;
    EXPECT_EQ(s.field(tracer_var(2))(0, 0, 0), 7.0);

    const auto ids = s.prognostic_ids();
    EXPECT_EQ(ids.size(), 8u);
    EXPECT_EQ(name_of(ids[0], s.species), "rho");
    EXPECT_EQ(name_of(ids[5], s.species), "rho_qv");
    EXPECT_EQ(name_of(ids[7], s.species), "rho_qr");
}

}  // namespace
}  // namespace asuca
