// The vertical implicit solve dispatches between the legacy scalar
// column-at-a-time Thomas sweep (column_batch = 1) and the batched
// W-column sweep (the CPU analogue of the paper's kij->xzy layout change,
// Sec. IV-A-1). Each batched lane executes exactly the scalar operation
// sequence, so on default builds (no implicit FMA contraction) every
// width must be bitwise identical to the scalar path. These tests pin
// that claim at three levels: the width-resolution rules, the implicit
// phase in isolation (including W=1 through the batched code path), and
// the full RK3/HE-VI step with microphysics.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>

#include "src/core/acoustic.hpp"
#include "src/core/diagnostics.hpp"
#include "src/core/initial.hpp"
#include "src/core/scenarios.hpp"
#include "src/field/simd.hpp"

namespace asuca {
namespace {

template <class T>
void expect_bitwise_equal(const Array3<T>& a, const Array3<T>& b,
                          const char* name) {
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0)
        << name << " differs (max |diff| = " << max_abs_diff(a, b) << ")";
}

/// Temporarily set/clear ASUCA_COLUMN_BATCH, restoring on destruction.
class ScopedEnv {
  public:
    ScopedEnv(const char* name, const char* value) : name_(name) {
        if (const char* old = std::getenv(name)) saved_ = old;
        if (value != nullptr) {
            ::setenv(name, value, 1);
        } else {
            ::unsetenv(name);
        }
    }
    ~ScopedEnv() {
        if (saved_.empty()) {
            ::unsetenv(name_);
        } else {
            ::setenv(name_, saved_.c_str(), 1);
        }
    }

  private:
    const char* name_;
    std::string saved_;
};

TEST(ColumnBatch, ExplicitConfigValueWins) {
    ScopedEnv env("ASUCA_COLUMN_BATCH", "5");
    EXPECT_EQ(resolve_column_batch<double>(1), 1);
    EXPECT_EQ(resolve_column_batch<double>(4), 4);
    EXPECT_EQ(resolve_column_batch<double>(12), 12);
}

TEST(ColumnBatch, EnvOverridesAutoWidth) {
    ScopedEnv env("ASUCA_COLUMN_BATCH", "5");
    EXPECT_EQ(resolve_column_batch<double>(0), 5);
}

TEST(ColumnBatch, AutoWidthDefaultsToSimdMultiple) {
    ScopedEnv env("ASUCA_COLUMN_BATCH", nullptr);
    EXPECT_EQ(resolve_column_batch<double>(0), default_column_batch<double>());
    EXPECT_EQ(default_column_batch<double>() % simd_lanes<double>(), 0);
    EXPECT_GE(default_column_batch<double>(), 4);
}

// ---------------------------------------------------------------------
// Implicit phase in isolation: batched sweeps of any width (including the
// degenerate W=1 run *through the batched code path*) must reproduce the
// scalar phase bitwise on the same inputs.

struct PhaseSetup {
    GridSpec spec;
    Grid<double> grid;
    State<double> state;
    Tendencies<double> slow;
    AcousticStepper<double> stepper;

    explicit PhaseSetup(Index column_batch)
        : spec(make_spec()), grid(spec), state(grid, SpeciesSet::dry()),
          slow(grid, SpeciesSet::dry()),
          stepper(grid, make_config(column_batch)) {
        initialize_hydrostatic(grid,
                               AtmosphereProfile::constant_n(300.0, 0.01),
                               5.0, 2.0, state);
        add_theta_bubble(grid, 1.5, 6000.0, 3000.0, 5000.0, 3000.0, 3000.0,
                         2000.0, state);
        slow.clear();
        stepper.prepare(state);
        stepper.init_deviations(state, state);
        // A few substeps so the deviations feeding the implicit phase are
        // nontrivial in every field.
        for (int n = 0; n < 4; ++n) {
            stepper.substep(slow, 1.0, LateralBc::Periodic);
        }
    }

    static AcousticConfig make_config(Index column_batch) {
        AcousticConfig cfg;
        cfg.column_batch = column_batch;
        return cfg;
    }

    static GridSpec make_spec() {
        GridSpec s;
        s.nx = 13;  // deliberately not a multiple of any batch width
        s.ny = 6;
        s.nz = 16;
        s.dx = 1000.0;
        s.dy = 1000.0;
        s.ztop = 12000.0;
        s.terrain = bell_mountain(300.0, 2500.0, 6000.0, 3000.0);
        return s;
    }
};

class ColumnBatchPhase : public ::testing::TestWithParam<Index> {};

TEST_P(ColumnBatchPhase, BatchedImplicitPhaseMatchesScalarBitwise) {
    PhaseSetup scalar(1);   // both evolve with the scalar dispatcher so
    PhaseSetup batched(1);  // the state feeding the phase is identical
    scalar.stepper.phase_vertical_implicit_scalar(scalar.slow, 1.0);
    batched.stepper.phase_vertical_implicit_batched(batched.slow, 1.0,
                                                    GetParam());
    expect_bitwise_equal(scalar.stepper.dw(), batched.stepper.dw(), "dw");
}

INSTANTIATE_TEST_SUITE_P(Widths, ColumnBatchPhase,
                         ::testing::Values<Index>(1, 2, 4, 8, 13, 16));

// ---------------------------------------------------------------------
// Full-step equivalence: the mountain-wave + warm-rain configuration must
// produce bit-identical states for the scalar path, small/odd batched
// widths, and the resolved auto width.

std::unique_ptr<AsucaModel<double>> run_full_steps(Index column_batch,
                                                   int steps) {
    auto cfg = scenarios::mountain_wave_config<double>(24, 10, 16);
    cfg.microphysics = true;
    cfg.stepper.acoustic.column_batch = column_batch;
    auto m = std::make_unique<AsucaModel<double>>(cfg);
    scenarios::init_mountain_wave(*m);
    m->run(steps);
    return m;
}

TEST(ColumnBatch, FullStepBatchedWidthsMatchScalarBitwise) {
    ScopedEnv env("ASUCA_COLUMN_BATCH", nullptr);
    const int steps = 2;
    auto scalar = run_full_steps(1, steps);
    for (const Index w : {Index(4), Index(7), Index(0)}) {  // 0 = auto
        auto batched = run_full_steps(w, steps);
        const auto& a = scalar->state();
        const auto& b = batched->state();
        expect_bitwise_equal(a.rho, b.rho, "rho");
        expect_bitwise_equal(a.rhou, b.rhou, "rhou");
        expect_bitwise_equal(a.rhov, b.rhov, "rhov");
        expect_bitwise_equal(a.rhow, b.rhow, "rhow");
        expect_bitwise_equal(a.rhotheta, b.rhotheta, "rhotheta");
        expect_bitwise_equal(a.p, b.p, "p");
        ASSERT_EQ(a.tracers.size(), b.tracers.size());
        for (std::size_t n = 0; n < a.tracers.size(); ++n) {
            expect_bitwise_equal(a.tracers[n], b.tracers[n],
                                 std::string(name_of(a.species.at(n))).c_str());
        }
    }
}

TEST(ColumnBatch, StepperReportsResolvedWidth) {
    ScopedEnv env("ASUCA_COLUMN_BATCH", "6");
    PhaseSetup su(0);
    EXPECT_EQ(su.stepper.column_batch_width(), 6);
    PhaseSetup forced(3);
    EXPECT_EQ(forced.stepper.column_batch_width(), 3);
}

}  // namespace
}  // namespace asuca
