// Tests of the CUDA-like execution layer and the ported kernels: the
// paper's porting methodology (shared tiles + register marching, Fig. 3)
// must reproduce the reference loops to the last bit.
#include <gtest/gtest.h>

#include "src/core/boundary.hpp"
#include "src/core/initial.hpp"
#include "src/gpusim/ported_kernels.hpp"

namespace asuca::gpusim {
namespace {

TEST(ExecModel, LaunchCoversAllBlocksAndThreads) {
    int visits = 0;
    const auto stats = exec::launch(
        {3, 2, 1}, {4, 2, 1},
        [&](const exec::BlockContext& ctx) {
            ctx.for_each_thread([&](exec::Dim3) { ++visits; });
        });
    EXPECT_EQ(stats.blocks_run, 6);
    EXPECT_EQ(stats.threads_run, 48);
    EXPECT_EQ(visits, 48);
}

TEST(ExecModel, SharedMemoryHasBlockLifetime) {
    std::vector<double> firsts;
    exec::launch({2, 1, 1}, {2, 1, 1}, [&](const exec::BlockContext& ctx) {
        double* buf = ctx.shared().allocate<double>(8);
        firsts.push_back(buf[0] = 42.0 + firsts.size());
        EXPECT_EQ(ctx.shared().used_bytes(), 64u);
    });
    EXPECT_EQ(firsts.size(), 2u);
}

TEST(ExecModel, SharedMemoryBudgetEnforced) {
    EXPECT_THROW(
        exec::launch({1, 1, 1}, {1, 1, 1},
                     [&](const exec::BlockContext& ctx) {
                         // 17 KB > the GT200's 16 KB per block.
                         ctx.shared().allocate<char>(17 * 1024);
                     }),
        Error);
    // The paper's float tile fits with room to spare.
    EXPECT_NO_THROW(exec::launch(
        {1, 1, 1}, {1, 1, 1}, [&](const exec::BlockContext& ctx) {
            ctx.shared().allocate<float>((64 + 3) * (4 + 3));
        }));
}

TEST(ExecModel, PhasesActAsBarriers) {
    // Phase 1 writes shared, phase 2 reads everything phase 1 wrote:
    // correct only if phase 1 completed for ALL threads first.
    exec::launch({1, 1, 1}, {8, 1, 1}, [&](const exec::BlockContext& ctx) {
        int* buf = ctx.shared().allocate<int>(8);
        ctx.for_each_thread(
            [&](exec::Dim3 t) { buf[t.x] = static_cast<int>(t.x); });
        ctx.for_each_thread([&](exec::Dim3) {
            int sum = 0;
            for (int s = 0; s < 8; ++s) sum += buf[s];
            EXPECT_EQ(sum, 28);
        });
    });
}

struct PortSetup {
    GridSpec spec;
    Grid<double> grid;
    State<double> state;
    MassFluxes<double> fluxes;
    Array3<double> rhophi;

    PortSetup()
        : spec(make_spec()), grid(spec), state(grid, SpeciesSet::dry()),
          fluxes(grid),
          rhophi({spec.nx, spec.ny, spec.nz}, spec.halo, spec.layout) {
        initialize_hydrostatic(grid,
                               AtmosphereProfile::constant_n(295.0, 0.01),
                               9.0, -4.0, state);
        // Give w some structure so z-fluxes are exercised.
        for (Index j = 0; j < spec.ny; ++j)
            for (Index k = 1; k < spec.nz; ++k)
                for (Index i = 0; i < spec.nx; ++i)
                    state.rhow(i, j, k) =
                        0.3 * std::sin(2 * M_PI * i / spec.nx) *
                        std::cos(2 * M_PI * j / spec.ny) *
                        std::sin(M_PI * k / spec.nz);
        for (Index j = 0; j < spec.ny; ++j)
            for (Index k = 0; k < spec.nz; ++k)
                for (Index i = 0; i < spec.nx; ++i)
                    rhophi(i, j, k) =
                        state.rho(i, j, k) *
                        (2.0 + std::sin(4 * M_PI * i / spec.nx) *
                                   std::cos(2 * M_PI * (j + k) / 16.0));
        for (auto* a : {&state.rho, &state.rhow, &rhophi}) {
            apply_lateral_bc(*a, LateralBc::Periodic, spec.nx, spec.ny);
        }
        apply_lateral_bc(state.rhou, LateralBc::Periodic, spec.nx, spec.ny);
        apply_lateral_bc(state.rhov, LateralBc::Periodic, spec.nx, spec.ny);
        compute_mass_fluxes(grid, state, fluxes);
    }

    static GridSpec make_spec() {
        GridSpec s;
        s.nx = 20;
        s.ny = 10;
        s.nz = 12;
        s.dx = 800.0;
        s.dy = 800.0;
        s.ztop = 9000.0;
        s.terrain = bell_ridge(350.0, 2500.0, 8000.0);
        return s;
    }
};

TEST(PortedKernels, CoordinateTransformMatchesReferenceBitwise) {
    PortSetup su;
    Array3<double> ref({su.spec.nx + 1, su.spec.ny, su.spec.nz},
                       su.spec.halo, su.spec.layout, 0.0);
    // Reference: straight loop over interior faces.
    for (Index j = 0; j < su.spec.ny; ++j)
        for (Index k = 0; k < su.spec.nz; ++k)
            for (Index i = 0; i < su.spec.nx + 1; ++i)
                ref(i, j, k) = su.grid.jacobian_xface()(i, j, k) *
                               su.state.rhou(i, j, k);

    Array3<double> ported({su.spec.nx + 1, su.spec.ny, su.spec.nz},
                          su.spec.halo, su.spec.layout, 0.0);
    const auto stats = port_coordinate_transform(
        su.grid, su.grid.jacobian_xface(), su.state.rhou, ported, 8, 4);
    EXPECT_EQ(max_abs_diff(ref, ported), 0.0);
    EXPECT_GT(stats.blocks_run, 1);
}

class PortedAdvectionBlocks
    : public ::testing::TestWithParam<std::pair<Index, Index>> {};

TEST_P(PortedAdvectionBlocks, MatchesReferenceBitwise) {
    PortSetup su;
    const auto [bx, bz] = GetParam();

    Array3<double> ref({su.spec.nx, su.spec.ny, su.spec.nz}, su.spec.halo,
                       su.spec.layout, 0.0);
    advect_scalar(su.grid, su.fluxes, su.state.rho, su.rhophi, ref);

    Array3<double> ported({su.spec.nx, su.spec.ny, su.spec.nz}, su.spec.halo,
                          su.spec.layout, 0.0);
    const auto stats = port_advect_scalar(su.grid, su.fluxes, su.state.rho,
                                          su.rhophi, ported, bx, bz);
    // Same arithmetic through the shared tile + registers: bit-identical,
    // the paper's round-off-level port validation.
    EXPECT_EQ(max_abs_diff(ref, ported), 0.0)
        << "block " << bx << "x" << bz;
    EXPECT_GT(stats.max_shared_bytes, 0u);
    EXPECT_LE(stats.max_shared_bytes, 16u * 1024u);
}

INSTANTIATE_TEST_SUITE_P(
    BlockShapes, PortedAdvectionBlocks,
    ::testing::Values(std::pair<Index, Index>{4, 4},
                      std::pair<Index, Index>{8, 2},
                      std::pair<Index, Index>{8, 4},
                      std::pair<Index, Index>{20, 12},  // one block
                      std::pair<Index, Index>{64, 4}),  // the paper's shape
    [](const auto& info) {
        return std::to_string(info.param.first) + "x" +
               std::to_string(info.param.second);
    });

TEST(PortedKernels, PaperTileFitsSharedBudgetInSingleNotDouble) {
    PortSetup su;
    Array3<double> out({su.spec.nx, su.spec.ny, su.spec.nz}, su.spec.halo,
                       su.spec.layout, 0.0);
    // double tile at the paper's 64x4 block: (64+4)*(4+4)*8 = 4.3 KB: ok.
    EXPECT_NO_THROW(port_advect_scalar(su.grid, su.fluxes, su.state.rho,
                                       su.rhophi, out, 64, 4));
    // A 128x12 double tile exceeds 16 KB and must be rejected.
    EXPECT_THROW(port_advect_scalar(su.grid, su.fluxes, su.state.rho,
                                    su.rhophi, out, 128, 12),
                 Error);
}

}  // namespace
}  // namespace asuca::gpusim
