// The j-slab decomposition assigns every output element to exactly one
// thread and performs no cross-slab reductions, so a time step must be
// bit-identical for any thread count. This pins that property on the
// mountain-wave configuration (dynamics + warm-rain microphysics +
// sedimentation), comparing a 1-thread and a 4-thread run bytewise.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "src/core/scenarios.hpp"
#include "src/parallel/thread_pool.hpp"

namespace asuca {
namespace {

template <class T>
void expect_bitwise_equal(const Array3<T>& a, const Array3<T>& b,
                          const char* name) {
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0)
        << name << " differs between thread counts (max |diff| = "
        << max_abs_diff(a, b) << ")";
}

// AsucaModel's stepper references its grid, so keep it behind a pointer.
std::unique_ptr<AsucaModel<double>> run_with_threads(std::size_t threads,
                                                     int steps) {
    ThreadPool::set_global_threads(threads);
    auto cfg = scenarios::mountain_wave_config<double>(24, 10, 16);
    cfg.microphysics = true;
    auto m = std::make_unique<AsucaModel<double>>(cfg);
    scenarios::init_mountain_wave(*m);
    m->run(steps);
    return m;
}

TEST(ParallelDeterminism, StepIsBitIdenticalAcrossThreadCounts) {
    const int steps = 2;
    auto serial = run_with_threads(1, steps);
    auto parallel = run_with_threads(4, steps);
    ThreadPool::set_global_threads(0);  // restore the default pool

    const auto& a = serial->state();
    const auto& b = parallel->state();
    expect_bitwise_equal(a.rho, b.rho, "rho");
    expect_bitwise_equal(a.rhou, b.rhou, "rhou");
    expect_bitwise_equal(a.rhov, b.rhov, "rhov");
    expect_bitwise_equal(a.rhow, b.rhow, "rhow");
    expect_bitwise_equal(a.rhotheta, b.rhotheta, "rhotheta");
    expect_bitwise_equal(a.p, b.p, "p");
    ASSERT_EQ(a.tracers.size(), b.tracers.size());
    for (std::size_t n = 0; n < a.tracers.size(); ++n) {
        expect_bitwise_equal(a.tracers[n], b.tracers[n],
                             std::string(name_of(a.species.at(n))).c_str());
    }
}

}  // namespace
}  // namespace asuca
