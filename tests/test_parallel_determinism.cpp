// The j-slab decomposition assigns every output element to exactly one
// thread and performs no cross-slab reductions, so a time step must be
// bit-identical for any thread count. This pins that property on the
// mountain-wave configuration (dynamics + warm-rain microphysics +
// sedimentation), comparing a 1-thread and a 4-thread run bytewise.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "src/cluster/multidomain.hpp"
#include "src/core/scenarios.hpp"
#include "src/parallel/thread_pool.hpp"

namespace asuca {
namespace {

template <class T>
void expect_bitwise_equal(const Array3<T>& a, const Array3<T>& b,
                          const char* name) {
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0)
        << name << " differs between thread counts (max |diff| = "
        << max_abs_diff(a, b) << ")";
}

// AsucaModel's stepper references its grid, so keep it behind a pointer.
std::unique_ptr<AsucaModel<double>> run_with_threads(std::size_t threads,
                                                     int steps) {
    ThreadPool::set_global_threads(threads);
    auto cfg = scenarios::mountain_wave_config<double>(24, 10, 16);
    cfg.microphysics = true;
    auto m = std::make_unique<AsucaModel<double>>(cfg);
    scenarios::init_mountain_wave(*m);
    m->run(steps);
    return m;
}

TEST(ParallelDeterminism, StepIsBitIdenticalAcrossThreadCounts) {
    const int steps = 2;
    auto serial = run_with_threads(1, steps);
    auto parallel = run_with_threads(4, steps);
    ThreadPool::set_global_threads(0);  // restore the default pool

    const auto& a = serial->state();
    const auto& b = parallel->state();
    expect_bitwise_equal(a.rho, b.rho, "rho");
    expect_bitwise_equal(a.rhou, b.rhou, "rhou");
    expect_bitwise_equal(a.rhov, b.rhov, "rhov");
    expect_bitwise_equal(a.rhow, b.rhow, "rhow");
    expect_bitwise_equal(a.rhotheta, b.rhotheta, "rhotheta");
    expect_bitwise_equal(a.p, b.p, "p");
    ASSERT_EQ(a.tracers.size(), b.tracers.size());
    for (std::size_t n = 0; n < a.tracers.size(); ++n) {
        expect_bitwise_equal(a.tracers[n], b.tracers[n],
                             std::string(name_of(a.species.at(n))).c_str());
    }
}

// The two parallel substrates composed: a 2x2 MultiDomain run on a
// 4-thread pool must agree bitwise with the single-domain run on a
// 1-thread pool. This crosses thread-count determinism with
// decomposition equivalence in one shot — a reduction reordered by either
// substrate, or a halo exchange racing the j-slab kernels, breaks it.
TEST(ParallelDeterminism, MultiDomainFourThreadsMatchesSingleDomainSerial) {
    GridSpec spec;
    spec.nx = 24;
    spec.ny = 12;
    spec.nz = 10;
    spec.ztop = 10000.0;
    spec.terrain = bell_mountain(350.0, 3000.0, 12000.0, 6000.0);
    TimeStepperConfig scfg;
    scfg.dt = 4.0;
    scfg.n_short_steps = 6;
    scfg.diffusion.kh = 10.0;
    scfg.diffusion.kv = 1.0;
    scfg.sponge.z_start = 8000.0;
    const SpeciesSet species = SpeciesSet::warm_rain();
    const int steps = 3;

    auto init_state = [&](const Grid<double>& grid, State<double>& s) {
        initialize_hydrostatic(grid,
                               AtmosphereProfile::constant_n(292.0, 0.011),
                               8.0, 3.0, s);
        set_relative_humidity(
            grid, [](double z) { return z < 2000.0 ? 0.8 : 0.3; }, s);
    };

    // Reference: single domain, one thread.
    ThreadPool::set_global_threads(1);
    Grid<double> grid(spec);
    State<double> single(grid, species);
    init_state(grid, single);
    State<double> initial = single;
    TimeStepper<double> stepper(grid, species, scfg);
    for (int n = 0; n < steps; ++n) stepper.step(single);

    // 2x2 decomposition on four threads, from the same initial state.
    ThreadPool::set_global_threads(4);
    cluster::MultiDomainRunner<double> runner(spec, 2, 2, species, scfg);
    runner.scatter(initial);
    for (int n = 0; n < steps; ++n) runner.step();
    State<double> gathered(grid, species);
    runner.gather(gathered);
    ThreadPool::set_global_threads(0);  // restore the default pool

    ASSERT_TRUE(state_is_finite(single));  // NaNs would vacuously "agree"
    EXPECT_EQ(max_abs_diff(single.rho, gathered.rho), 0.0);
    EXPECT_EQ(max_abs_diff(single.rhou, gathered.rhou), 0.0);
    EXPECT_EQ(max_abs_diff(single.rhov, gathered.rhov), 0.0);
    EXPECT_EQ(max_abs_diff(single.rhow, gathered.rhow), 0.0);
    EXPECT_EQ(max_abs_diff(single.rhotheta, gathered.rhotheta), 0.0);
    ASSERT_EQ(single.tracers.size(), gathered.tracers.size());
    for (std::size_t n = 0; n < single.tracers.size(); ++n) {
        EXPECT_EQ(max_abs_diff(single.tracers[n], gathered.tracers[n]), 0.0)
            << name_of(single.species.at(n));
    }
}

}  // namespace
}  // namespace asuca
