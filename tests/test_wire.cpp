// The wire API's codec contract (src/server/wire.hpp), the
// transport-neutral half of the out-of-process forecast service:
//
//   * Exact round-trip — serialize -> parse -> canonicalize lands on the
//     SAME canonical_key (and bitwise-equal fields) as canonicalizing
//     the original, across randomized valid specs including uint64
//     seeds above 2^53 that a JSON double cannot carry.
//   * Strict rejection — truncated frames, unknown fields, wrong types,
//     non-integral / non-finite / out-of-range numerics, over-long
//     strings and version mismatches all throw WireError with the
//     bad_request taxonomy code. A lenient reader would turn client
//     typos into silently-wrong forecasts.
//   * Response/result mapping — the degraded/failure taxonomy serializes
//     losslessly, and the durable result cache's on-disk JSON reloads
//     into the same wire answer.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "src/io/json.hpp"
#include "src/server/wire.hpp"

namespace asuca::server {
namespace {

ScenarioSpec small_spec(int steps = 2) {
    ScenarioSpec s;
    s.scenario = "warm_bubble";
    s.nx = 16;
    s.ny = 16;
    s.nz = 12;
    s.steps = steps;
    return s;
}

/// One wire round trip of a spec: what a client serializes is what the
/// server parses out of the frame.
ScenarioSpec roundtrip(const ScenarioSpec& s) {
    return wire::spec_from_json(
        io::json_parse(wire::spec_to_json(s).dump_compact()));
}

void expect_specs_equal(const ScenarioSpec& a, const ScenarioSpec& b) {
    EXPECT_EQ(a.scenario, b.scenario);
    EXPECT_EQ(a.nx, b.nx);
    EXPECT_EQ(a.ny, b.ny);
    EXPECT_EQ(a.nz, b.nz);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.physics, b.physics);
    EXPECT_EQ(a.px, b.px);
    EXPECT_EQ(a.py, b.py);
    EXPECT_EQ(a.overlap, b.overlap);
    EXPECT_EQ(a.warm_start, b.warm_start);
    EXPECT_EQ(a.member, b.member);
    EXPECT_EQ(a.perturb_seed, b.perturb_seed);
    // Bitwise, not approximate: the %.17g contract must be exact.
    EXPECT_EQ(a.perturb_amplitude, b.perturb_amplitude);
    EXPECT_EQ(a.coarsen, b.coarsen);
    EXPECT_EQ(a.inject, b.inject);
}

/// Expect `fn` to throw WireError carrying the bad_request code.
template <typename Fn>
void expect_bad_request(Fn&& fn, const char* what) {
    try {
        fn();
        FAIL() << what << ": no WireError thrown";
    } catch (const wire::WireError& e) {
        EXPECT_EQ(e.code(), ErrorCode::bad_request) << what;
    }
}

// ---------------------------------------------------------------------
// Round-trip properties.
// ---------------------------------------------------------------------

// The load-bearing property: a spec's cache identity — and therefore
// its bits — survives the wire. Randomized over the valid spec space.
TEST(WireRoundTrip, RandomValidSpecsKeepTheirCanonicalKey) {
    std::mt19937_64 rng(20260807);
    const char* scenarios[] = {"warm_bubble", "mountain_wave", "real_case"};
    for (int trial = 0; trial < 200; ++trial) {
        ScenarioSpec s;
        s.scenario = scenarios[rng() % 3];
        s.nx = static_cast<Index>(8 + 4 * (rng() % 7));
        s.ny = static_cast<Index>(8 + 4 * (rng() % 7));
        s.nz = static_cast<Index>(6 + (rng() % 10));
        s.steps = static_cast<int>(1 + rng() % 9);
        s.physics = (rng() % 2) == 0;
        s.member = static_cast<int>(rng() % 32);
        s.perturb_seed = rng();  // full uint64 range
        s.perturb_amplitude =
            (rng() % 4 == 0) ? 0.0
                             : 1.0e-3 * static_cast<double>(rng() % 1000) +
                                   1.0e-9;
        s.warm_start = (rng() % 2 == 0) ? "" : "analysis";
        s.coarsen = 0;
        const ScenarioSpec wired = roundtrip(s);
        expect_specs_equal(s, wired);
        const ScenarioSpec canon_direct = canonicalize(s);
        const ScenarioSpec canon_wired = canonicalize(wired);
        expect_specs_equal(canon_direct, canon_wired);
        ASSERT_EQ(canonical_key(canon_direct), canonical_key(canon_wired))
            << "trial " << trial;
    }
}

// Seeds above 2^53 do not fit in a JSON double — the codec must carry
// them as decimal strings, exactly.
TEST(WireRoundTrip, SeedAbove2Pow53SurvivesExactly) {
    ScenarioSpec s = small_spec();
    s.warm_start = "analysis";
    s.perturb_amplitude = 1.0e-3;
    s.perturb_seed = 0xfedcba9876543210ull;  // ~1.8e19, >> 2^53
    const ScenarioSpec wired = roundtrip(s);
    EXPECT_EQ(wired.perturb_seed, 0xfedcba9876543210ull);
    EXPECT_EQ(canonical_key(canonicalize(s)),
              canonical_key(canonicalize(wired)));
}

TEST(WireRoundTrip, RequestEnvelopeCarriesIdClientAndDeadline) {
    wire::ForecastRequestV1 req;
    req.spec = small_spec();
    req.id = 0xdeadbeefcafef00dull;
    req.client = "tester";
    req.deadline_ms = 1500;
    const wire::ForecastRequestV1 back = wire::parse_request_line(
        wire::request_to_json(req).dump_compact());
    EXPECT_EQ(back.id, req.id);
    EXPECT_EQ(back.client, "tester");
    EXPECT_EQ(back.deadline_ms, 1500);
    expect_specs_equal(back.spec, req.spec);
}

TEST(WireRoundTrip, ResponseEnvelopeRoundTripsSuccessAndFailure) {
    wire::ForecastResponseV1 ok;
    ok.id = 9;
    ok.ok = true;
    ok.executed = canonicalize(small_spec());
    ok.degrade_level = 1;
    ok.error = {ErrorCode::degraded, "admission ladder level 1"};
    ok.steps_run = 1;
    ok.fingerprint = 0x0123456789abcdefull;
    ok.max_w = 1.25;
    ok.total_mass = 3.5e9;
    ok.latency_ms = 42.0;
    ok.served_from = "durable";
    const wire::ForecastResponseV1 ok2 = wire::parse_response_line(
        wire::response_to_json(ok).dump_compact());
    EXPECT_TRUE(ok2.ok);
    EXPECT_EQ(ok2.id, 9u);
    EXPECT_EQ(ok2.error.code, ErrorCode::degraded);
    EXPECT_EQ(ok2.fingerprint, 0x0123456789abcdefull);
    EXPECT_EQ(ok2.max_w, 1.25);
    EXPECT_EQ(ok2.served_from, "durable");

    const wire::ForecastResponseV1 bad = wire::parse_response_line(
        wire::response_to_json(
            wire::error_response(3, ErrorCode::over_capacity,
                                 "shed: request queue full"))
            .dump_compact());
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(bad.id, 3u);
    EXPECT_EQ(bad.error.code, ErrorCode::over_capacity);
    EXPECT_EQ(bad.error.detail, "shed: request queue full");
}

// The durable result cache's on-disk JSON reloads into the same answer.
TEST(WireRoundTrip, DurableResultCodecIsLossless) {
    ForecastResult res;
    res.executed = canonicalize(small_spec());
    res.degrade_level = 2;
    res.steps_run = 1;
    res.fingerprint = 0xabcdef0123456789ull;
    res.max_w = 0.75;
    res.total_mass = 1.0e10;
    res.latency_ms = 17.5;
    const ForecastResult back = wire::result_from_json(
        io::json_parse(wire::result_to_json(res).dump_compact()));
    EXPECT_EQ(back.fingerprint, res.fingerprint);
    EXPECT_EQ(back.degrade_level, 2);
    EXPECT_EQ(back.steps_run, 1);
    EXPECT_EQ(back.max_w, 0.75);
    EXPECT_EQ(back.total_mass, 1.0e10);
    EXPECT_EQ(canonical_key(back.executed), canonical_key(res.executed));
}

TEST(WireRoundTrip, DegradedResultMapsToTheDegradedCode) {
    ForecastResult res;
    res.executed = canonicalize(small_spec());
    res.steps_run = 1;
    res.degrade_level = 2;
    const wire::ForecastResponseV1 r = wire::result_to_response(5, res);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.error.code, ErrorCode::degraded);
    EXPECT_NE(r.error.detail.find("coarsened"), std::string::npos);
    // Failure with no specific code defaults to internal_fault.
    ForecastResult fail;
    fail.error = "boom";
    const wire::ForecastResponseV1 f = wire::result_to_response(6, fail);
    EXPECT_FALSE(f.ok);
    EXPECT_EQ(f.error.code, ErrorCode::internal_fault);
}

// ---------------------------------------------------------------------
// Strict rejection: every malformed frame is a typed bad_request.
// ---------------------------------------------------------------------

TEST(WireNegative, TruncatedAndMalformedFramesAreBadRequests) {
    for (const char* frame :
         {"{\"v\":1,\"type\":\"forecast\"",  // truncated mid-object
          "{\"v\":1,\"spec\":{\"scenario\":\"warm_bubble\"",  // nested cut
          "", "not json at all", "[1,2,3]", "42",
          "{\"v\":1} trailing garbage"}) {
        expect_bad_request([&] { wire::parse_request_line(frame); }, frame);
    }
}

TEST(WireNegative, UnknownFieldsAreRejectedNotIgnored) {
    // A typo'd "step" must not silently become the default horizon.
    io::JsonValue j = wire::spec_to_json(small_spec());
    j.set("step", 500);
    expect_bad_request([&] { wire::spec_from_json(j); }, "spec typo");

    wire::ForecastRequestV1 req;
    req.spec = small_spec();
    io::JsonValue r = wire::request_to_json(req);
    r.set("deadline", 1000);  // typo of deadline_ms
    expect_bad_request([&] { wire::request_from_json(r); },
                       "request typo");
}

TEST(WireNegative, MissingRequiredSpecFieldsAreRejected) {
    io::JsonValue j = wire::spec_to_json(small_spec());
    io::JsonValue partial;
    for (const auto& [key, v] : j.as_object()) {
        if (key != "steps") partial.set(key, v);
    }
    expect_bad_request([&] { wire::spec_from_json(partial); },
                       "missing steps");
    expect_bad_request(
        [&] {
            wire::parse_request_line("{\"v\":1,\"type\":\"forecast\"}");
        },
        "missing spec");
}

TEST(WireNegative, NonFiniteNumbersAreRejected) {
    // JSON has no NaN/Inf literals, but "1e999" overflows strtod to Inf
    // — the codec must catch it, not store it.
    expect_bad_request(
        [&] {
            wire::spec_from_json(io::json_parse(
                "{\"scenario\":\"warm_bubble\",\"nx\":16,\"ny\":16,"
                "\"nz\":12,\"steps\":2,\"perturb_amplitude\":1e999}"));
        },
        "inf amplitude");
}

TEST(WireNegative, OutOfRangeAndNonIntegralNumbersAreRejected) {
    const struct {
        const char* field;
        const char* value;
    } cases[] = {
        {"nx", "0"},          {"nx", "2097152"},  {"nx", "3.5"},
        {"steps", "0"},       {"steps", "-4"},    {"px", "70000"},
        {"member", "-1"},     {"coarsen", "7"},
        {"perturb_amplitude", "-0.5"},
    };
    for (const auto& c : cases) {
        std::string body =
            "{\"scenario\":\"warm_bubble\",\"ny\":16,\"nz\":12";
        if (std::string(c.field) != "nx") body += ",\"nx\":16";
        if (std::string(c.field) != "steps") body += ",\"steps\":2";
        body += std::string(",\"") + c.field + "\":" + c.value + "}";
        expect_bad_request([&] { wire::spec_from_json(io::json_parse(body)); },
                           c.field);
    }
}

TEST(WireNegative, OverlongStringsAreRejected) {
    const std::string huge(wire::kMaxWireString + 1, 'x');
    io::JsonValue j = wire::spec_to_json(small_spec());
    j.set("warm_start", huge);
    expect_bad_request([&] { wire::spec_from_json(j); },
                       "overlong warm_start");
}

TEST(WireNegative, BadSeedAndFingerprintEncodingsAreRejected) {
    io::JsonValue j = wire::spec_to_json(small_spec());
    for (const char* bad : {"", "12x4", "99999999999999999999999",
                            "-3", "0x12"}) {
        j.set("perturb_seed", std::string(bad));
        expect_bad_request([&] { wire::spec_from_json(j); }, bad);
    }
    for (const char* bad : {"", "123", "xyzv567890abcdef",
                            "0123456789ABCDEF",  // uppercase: not canonical
                            "0123456789abcdef0"}) {
        io::JsonValue r;
        r.set("v", wire::kWireVersion);
        r.set("id", "1");
        r.set("ok", true);
        io::JsonValue err;
        err.set("code", "none");
        err.set("detail", "");
        r.set("error", std::move(err));
        r.set("fingerprint", std::string(bad));
        expect_bad_request([&] { wire::response_from_json(r); }, bad);
    }
}

TEST(WireNegative, VersionAndTypeGatesHold) {
    expect_bad_request(
        [&] {
            wire::parse_request_line(
                "{\"v\":2,\"type\":\"forecast\",\"spec\":{}}");
        },
        "future version");
    expect_bad_request(
        [&] { wire::parse_request_line("{\"type\":\"forecast\"}"); },
        "missing version");
    io::JsonValue j;
    j.set("v", wire::kWireVersion);
    j.set("type", "divination");
    j.set("spec", wire::spec_to_json(small_spec()));
    expect_bad_request([&] { wire::request_from_json(j); }, "bad type");
}

}  // namespace
}  // namespace asuca::server
