// Tests for the contravariant mass fluxes over terrain (the paper's
// coordinate-transform kernel family and the kinematic boundary).
#include <gtest/gtest.h>

#include "src/core/boundary.hpp"
#include "src/core/initial.hpp"
#include "src/core/mass_flux.hpp"

namespace asuca {
namespace {

struct FluxSetup {
    GridSpec spec;
    Grid<double> grid;
    State<double> state;
    MassFluxes<double> fluxes;

    explicit FluxSetup(TerrainFunction terrain, double u0)
        : spec(make_spec(std::move(terrain))), grid(spec),
          state(grid, SpeciesSet::dry()), fluxes(grid) {
        initialize_hydrostatic(grid, AtmosphereProfile::constant_n(300.0, 0.01),
                               u0, 0.0, state);
        apply_lateral_bc(state.rhou, LateralBc::Periodic, spec.nx, spec.ny);
        apply_lateral_bc(state.rhov, LateralBc::Periodic, spec.nx, spec.ny);
        apply_lateral_bc(state.rhow, LateralBc::Periodic, spec.nx, spec.ny);
        compute_mass_fluxes(grid, state, fluxes);
    }

    static GridSpec make_spec(TerrainFunction terrain) {
        GridSpec s;
        s.nx = 16;
        s.ny = 8;
        s.nz = 10;
        s.dx = 1000.0;
        s.dy = 1000.0;
        s.ztop = 10000.0;
        s.terrain = std::move(terrain);
        return s;
    }
};

TEST(MassFlux, BoundaryFacesCarryNoFlux) {
    FluxSetup su(bell_ridge(500.0, 2500.0, 8000.0), 10.0);
    for (Index j = 0; j < su.spec.ny; ++j) {
        for (Index i = 0; i < su.spec.nx; ++i) {
            EXPECT_EQ(su.fluxes.fz(i, j, 0), 0.0);
            EXPECT_EQ(su.fluxes.fz(i, j, su.spec.nz), 0.0);
        }
    }
}

TEST(MassFlux, FlatTerrainUniformFlowHasNoVerticalFlux) {
    FluxSetup su(flat_terrain(), 10.0);
    for (Index j = 0; j < su.spec.ny; ++j)
        for (Index k = 0; k <= su.spec.nz; ++k)
            for (Index i = 0; i < su.spec.nx; ++i)
                EXPECT_EQ(su.fluxes.fz(i, j, k), 0.0);
}

TEST(MassFlux, TerrainSlopeForcesContravariantFlux) {
    // With w = 0 but flow over a slope, the contravariant flux is
    // -rho*u*zx: negative upslope on the windward side (flow crosses
    // coordinate surfaces downward relative to them... sign: zx > 0 on
    // the windward side, u > 0 -> fz < 0).
    FluxSetup su(bell_ridge(500.0, 2500.0, 8000.0), 10.0);
    const auto& zx = su.grid.slope_x_zface();
    bool saw_nonzero = false;
    for (Index i = 1; i < su.spec.nx - 1; ++i) {
        const double fz = su.fluxes.fz(i, 4, 2);
        const double slope = zx(i, 4, 2);
        if (std::abs(slope) > 1e-4) {
            saw_nonzero = true;
            EXPECT_LT(fz * slope, 0.0) << "i=" << i;  // opposite signs
        }
    }
    EXPECT_TRUE(saw_nonzero);
}

TEST(MassFlux, HorizontalFluxesScaleWithFaceJacobian) {
    FluxSetup su(bell_ridge(600.0, 2500.0, 8000.0), 10.0);
    const auto& jxf = su.grid.jacobian_xface();
    for (Index i = 0; i < su.spec.nx + 1; ++i) {
        EXPECT_NEAR(su.fluxes.fu(i, 4, 1),
                    jxf(i, 4, 1) * su.state.rhou(i, 4, 1), 1e-12);
    }
}

TEST(MassFlux, SplitFunctionsComposeToCombined) {
    FluxSetup su(bell_mountain(400.0, 3000.0, 8000.0, 4000.0), 7.0);
    MassFluxes<double> split(su.grid);
    compute_horizontal_mass_fluxes(su.grid, su.state, split);
    compute_contravariant_flux(su.grid, su.state, split);
    EXPECT_EQ(max_abs_diff(split.fu, su.fluxes.fu), 0.0);
    EXPECT_EQ(max_abs_diff(split.fv, su.fluxes.fv), 0.0);
    EXPECT_EQ(max_abs_diff(split.fz, su.fluxes.fz), 0.0);
}

}  // namespace
}  // namespace asuca
