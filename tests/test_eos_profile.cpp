// Tests for the equation of state (paper Eq. 5) and the hydrostatic
// atmosphere profiles.
#include <gtest/gtest.h>

#include "src/common/constants.hpp"
#include "src/core/eos.hpp"
#include "src/core/profile.hpp"

namespace asuca {
namespace {

using namespace constants;

TEST(Eos, ReferenceStatePressure) {
    // At p = p00 and theta = 300: rho*theta = p00/(Rd * pi * theta) * ...
    // simplest check: eos_rhotheta is the exact inverse of eos_pressure.
    for (double p : {2.0e4, 5.0e4, 8.0e4, 1.0e5, 1.05e5}) {
        const double rt = eos_rhotheta(p);
        EXPECT_NEAR(eos_pressure(rt), p, 1e-8 * p);
    }
}

TEST(Eos, PressureDerivativeMatchesFiniteDifference) {
    const double rt = eos_rhotheta(8.5e4);
    const double eps = 1e-6 * rt;
    const double dfdx =
        (eos_pressure(rt + eps) - eos_pressure(rt - eps)) / (2 * eps);
    EXPECT_NEAR(eos_dp_drhotheta(eos_pressure(rt), rt), dfdx, 1e-4 * dfdx);
}

TEST(Eos, SoundSpeedIsAtmospheric) {
    // ~340 m/s near the surface.
    const double p = 1.0e5, T = 288.0;
    const double rho = p / (Rd * T);
    const double cs = std::sqrt(eos_sound_speed_sq(p, rho));
    EXPECT_NEAR(cs, 340.0, 5.0);
}

TEST(Eos, ExnerAtReferencePressureIsOne) {
    EXPECT_DOUBLE_EQ(exner(p00), 1.0);
    EXPECT_LT(exner(5.0e4), 1.0);
}

TEST(Eos, ThetaMReducesToThetaWhenDry) {
    EXPECT_DOUBLE_EQ(theta_m_of(300.0, 0.0, 0.0), 300.0);
    // Vapor raises theta_m (eps = Rv/Rd > 1).
    EXPECT_GT(theta_m_of(300.0, 0.01, 0.0), 300.0);
    // Condensate loading lowers it.
    EXPECT_LT(theta_m_of(300.0, 0.0, 0.01), 300.0);
}

class ProfileKinds
    : public ::testing::TestWithParam<std::function<AtmosphereProfile()>> {};

TEST_P(ProfileKinds, HydrostaticBalanceHolds) {
    const auto prof = GetParam()();
    // d pi/dz = -g / (cp * theta), checked by finite differences.
    for (double z : {100.0, 1000.0, 3000.0, 7000.0, 11000.0}) {
        const double dz = 1.0;
        const double dpidz =
            (prof.exner(z + dz) - prof.exner(z - dz)) / (2 * dz);
        EXPECT_NEAR(dpidz, -g / (cpd * prof.theta(z)),
                    1e-6 * std::abs(dpidz) + 1e-12)
            << "z=" << z;
    }
}

TEST_P(ProfileKinds, DensityAndPressureDecreaseWithHeight) {
    const auto prof = GetParam()();
    double prev_p = 1e9, prev_rho = 1e9;
    for (double z = 0.0; z <= 12000.0; z += 500.0) {
        EXPECT_LT(prof.pressure(z), prev_p);
        EXPECT_LT(prof.rho(z), prev_rho);
        EXPECT_GT(prof.rho(z), 0.0);
        prev_p = prof.pressure(z);
        prev_rho = prof.rho(z);
    }
}

TEST_P(ProfileKinds, IdealGasLawHolds) {
    const auto prof = GetParam()();
    for (double z : {0.0, 2000.0, 9000.0}) {
        EXPECT_NEAR(prof.pressure(z),
                    prof.rho(z) * Rd * prof.temperature(z),
                    1e-8 * prof.pressure(z));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, ProfileKinds,
    ::testing::Values([] { return AtmosphereProfile::isentropic(300.0); },
                      [] { return AtmosphereProfile::constant_n(290.0, 0.01); },
                      [] { return AtmosphereProfile::isothermal(260.0); }));

TEST(Profile, ConstantNHasRequestedStratification) {
    const double n = 0.012;
    const auto prof = AtmosphereProfile::constant_n(295.0, n);
    // N^2 = g/theta * dtheta/dz
    for (double z : {500.0, 4000.0, 9000.0}) {
        const double dz = 1.0;
        const double dthdz =
            (prof.theta(z + dz) - prof.theta(z - dz)) / (2 * dz);
        const double n2 = g / prof.theta(z) * dthdz;
        EXPECT_NEAR(std::sqrt(n2), n, 1e-6);
    }
}

TEST(Profile, IsothermalIsIsothermal) {
    const auto prof = AtmosphereProfile::isothermal(250.0);
    for (double z : {0.0, 3000.0, 8000.0, 12000.0}) {
        EXPECT_NEAR(prof.temperature(z), 250.0, 1e-9);
    }
}

TEST(Profile, RejectsUnphysicalInputs) {
    EXPECT_THROW(AtmosphereProfile::isentropic(50.0), Error);
    EXPECT_THROW(AtmosphereProfile::constant_n(300.0, -0.01), Error);
}

TEST(Profile, EosAndProfileAgree) {
    // rho*theta from the profile must invert through the EOS to the
    // profile's own pressure — the consistency the reference state and
    // the prognostic initialization rely on.
    const auto prof = AtmosphereProfile::constant_n(300.0, 0.01);
    for (double z : {0.0, 1500.0, 6000.0, 11000.0}) {
        EXPECT_NEAR(eos_pressure(prof.rho_theta(z)), prof.pressure(z),
                    1e-7 * prof.pressure(z));
    }
}

}  // namespace
}  // namespace asuca
