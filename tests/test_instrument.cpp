// Tests for the FLOP-counting scalar, kernel registry and calibration —
// the reproduction's PAPI substitute.
#include <gtest/gtest.h>

#include "src/instrument/calibration.hpp"
#include "src/instrument/counting_real.hpp"
#include "src/instrument/kernel_registry.hpp"

namespace asuca {
namespace {

TEST(CountingReal, CountsBasicArithmetic) {
    FlopCounter::reset();
    CountedDouble a(2.0), b(3.0);
    CountedDouble c = a + b;   // 1
    c = c * a;                 // 1
    c = c - b;                 // 1
    c = c / a;                 // 1
    c += a;                    // 1
    EXPECT_EQ(FlopCounter::value(), 5u);
    EXPECT_DOUBLE_EQ(static_cast<double>(c), 5.5);
}

TEST(CountingReal, TranscendentalsUseWeights) {
    FlopCounter::reset();
    CountedDouble x(2.0);
    auto y = exp(x);
    EXPECT_EQ(FlopCounter::value(), flop_weights::exp_w);
    FlopCounter::reset();
    y = pow(x, CountedDouble(0.875));
    EXPECT_EQ(FlopCounter::value(), flop_weights::pow_w);
    FlopCounter::reset();
    y = sqrt(x);
    EXPECT_EQ(FlopCounter::value(), flop_weights::sqrt_w);
    (void)y;
}

TEST(CountingReal, ResultsMatchDouble) {
    // The wrapper must be numerically transparent.
    const double a = 1.7, b = -0.3;
    CountedDouble ca(a), cb(b);
    EXPECT_EQ(static_cast<double>(ca * cb + ca / cb), a * b + a / b);
    EXPECT_EQ(static_cast<double>(exp(ca)), std::exp(a));
    EXPECT_EQ(static_cast<double>(max(ca, cb)), std::max(a, b));
}

TEST(KernelRegistry, RecordsScopes) {
    KernelRegistry reg;
    {
        KernelScope scope("k1", {2, 1, 3}, 100, &reg);
        FlopCounter::add(500);
    }
    {
        KernelScope scope("k1", {2, 1, 3}, 100, &reg);
        FlopCounter::add(300);
    }
    auto rec = reg.find("k1");
    EXPECT_EQ(rec.calls, 2u);
    EXPECT_EQ(rec.elements, 200u);
    EXPECT_EQ(rec.flops, 800u);
    EXPECT_DOUBLE_EQ(rec.flops_per_element(), 4.0);
    EXPECT_GE(rec.seconds, 0.0);
}

TEST(Calibration, FullModelStepProducesPerKernelFlops) {
    auto cfg = benchmark_model_config();
    cfg.stepper.n_short_steps = 2;
    const auto cal = calibrate_flops(cfg, {12, 10, 8});
    ASSERT_FALSE(cal.records.empty());
    EXPECT_GT(cal.flops_per_step_per_element, 100.0);

    // The paper's five key kernels must all be present and instrumented.
    auto has = [&](const char* name) {
        for (const auto& r : cal.records)
            if (r.name == name && r.flops > 0) return true;
        return false;
    };
    EXPECT_TRUE(has("coordinate_transform"));
    EXPECT_TRUE(has("pgf_x_short"));
    EXPECT_TRUE(has("advection_momentum_x"));
    EXPECT_TRUE(has("helmholtz_1d"));
    EXPECT_TRUE(has("warm_rain"));
}

TEST(Calibration, FlopsPerElementIsMeshIndependent) {
    auto cfg = benchmark_model_config();
    cfg.stepper.n_short_steps = 2;
    cfg.microphysics = false;  // microphysics work depends on saturation
    cfg.species = SpeciesSet::dry();
    const auto small = calibrate_flops(cfg, {10, 8, 8});
    const auto large = calibrate_flops(cfg, {20, 16, 8});
    auto fpe = [](const CalibrationResult& c, const char* name) {
        for (const auto& r : c.records)
            if (r.name == name) return r.flops_per_element();
        return 0.0;
    };
    // Streaming kernels: identical per-element work at any mesh size.
    for (const char* k : {"pgf_x_short", "continuity_update",
                          "pressure_update", "coordinate_transform"}) {
        EXPECT_NEAR(fpe(small, k), fpe(large, k), 0.05 * fpe(large, k))
            << k;
        EXPECT_GT(fpe(large, k), 0.0) << k;
    }
}

}  // namespace
}  // namespace asuca
