// Tests for the terrain-following grid and its metric terms.
#include <gtest/gtest.h>

#include "src/grid/grid.hpp"

namespace asuca {
namespace {

GridSpec base_spec() {
    GridSpec s;
    s.nx = 20;
    s.ny = 10;
    s.nz = 12;
    s.dx = 500.0;
    s.dy = 500.0;
    s.ztop = 12000.0;
    return s;
}

TEST(VerticalLevels, UniformLevels) {
    VerticalLevels lv(10, 10000.0);
    EXPECT_DOUBLE_EQ(lv.face(0), 0.0);
    EXPECT_DOUBLE_EQ(lv.face(10), 10000.0);
    EXPECT_DOUBLE_EQ(lv.thickness(3), 1000.0);
    EXPECT_DOUBLE_EQ(lv.center(0), 500.0);
}

TEST(VerticalLevels, StretchingConcentratesNearSurface) {
    VerticalLevels lv(20, 10000.0, 2.0);
    EXPECT_LT(lv.thickness(0), lv.thickness(19));
    EXPECT_DOUBLE_EQ(lv.face(0), 0.0);
    EXPECT_NEAR(lv.face(20), 10000.0, 1e-9);
    // Faces strictly increasing.
    for (Index k = 0; k < 20; ++k) EXPECT_GT(lv.face(k + 1), lv.face(k));
}

TEST(Grid, FlatTerrainGivesIdentityMetrics) {
    Grid<double> g(base_spec());
    for (Index j = 0; j < g.ny(); ++j) {
        for (Index k = 0; k < g.nz(); ++k) {
            for (Index i = 0; i < g.nx(); ++i) {
                EXPECT_DOUBLE_EQ(g.jacobian()(i, j, k), 1.0);
                EXPECT_DOUBLE_EQ(g.z_center()(i, j, k), g.zeta_center(k));
                EXPECT_DOUBLE_EQ(g.slope_x_zface()(i, j, k), 0.0);
                EXPECT_DOUBLE_EQ(g.slope_y_zface()(i, j, k), 0.0);
            }
        }
    }
}

TEST(Grid, TerrainLiftsSurfaceAndCompressesColumns) {
    auto spec = base_spec();
    spec.terrain = bell_ridge(800.0, 2000.0, 5000.0);
    Grid<double> g(spec);
    // Over the peak: z at the lowest center sits above the flat value and
    // J < 1 (column compressed between terrain and rigid top).
    const Index ip = 9;  // x_center(9) = 4750, near the 5000 m peak
    EXPECT_GT(g.z_center()(ip, 5, 0), g.zeta_center(0));
    EXPECT_LT(g.jacobian()(ip, 5, 0), 1.0);
    // At the model top the terrain influence has decayed to zero.
    EXPECT_NEAR(g.z_center()(ip, 5, g.nz() - 1),
                g.height_of(g.hsurf()(ip, 5), g.zeta_center(g.nz() - 1)),
                1e-9);
}

TEST(Grid, SlopesMatchTerrainDerivative) {
    auto spec = base_spec();
    spec.terrain = bell_ridge(500.0, 3000.0, 5000.0);
    Grid<double> g(spec);
    for (Index i = 2; i < g.nx() - 2; ++i) {
        const double dhdx = (g.hsurf()(i + 1, 5) - g.hsurf()(i - 1, 5)) /
                            (2.0 * g.dx());
        // Near the surface the decay factor is ~1.
        EXPECT_NEAR(g.slope_x_zface()(i, 5, 0), dhdx, 1e-9);
        // Slope decays with height.
        EXPECT_LT(std::abs(g.slope_x_zface()(i, 5, g.nz())),
                  std::abs(g.slope_x_zface()(i, 5, 0)) + 1e-12);
    }
}

TEST(Grid, JacobianConsistentWithThicknessIntegral) {
    // Integrating J dzeta over the column gives ztop - h exactly for the
    // linear (n=1) transform.
    auto spec = base_spec();
    spec.terrain = bell_ridge(600.0, 2500.0, 5000.0);
    Grid<double> g(spec);
    for (Index i = 0; i < g.nx(); i += 3) {
        double sum = 0.0;
        for (Index k = 0; k < g.nz(); ++k) {
            sum += g.jacobian()(i, 4, k) * g.dzeta(k);
        }
        EXPECT_NEAR(sum, spec.ztop - g.hsurf()(i, 4), 1e-7);
    }
}

TEST(Grid, DecayPowerChangesVerticalJacobianVariation) {
    auto spec = base_spec();
    spec.terrain = bell_ridge(600.0, 2500.0, 5000.0);
    spec.terrain_decay_power = 2.0;
    Grid<double> g(spec);
    // With n=2 the Jacobian varies with k (hybrid coordinate) and exceeds
    // 1 near the top of the terrain influence region.
    const Index ip = 9;
    EXPECT_LT(g.jacobian()(ip, 5, 0), 1.0);
    EXPECT_NE(g.jacobian()(ip, 5, 0), g.jacobian()(ip, 5, g.nz() - 1));
}

TEST(Grid, HaloMetricsAreFinite) {
    auto spec = base_spec();
    spec.terrain = bell_mountain(700.0, 2000.0, 5000.0, 2500.0);
    spec.vertical_stretch = 1.5;
    Grid<double> g(spec);
    const Index h = g.halo();
    for (Index j = -h; j < g.ny() + h; ++j)
        for (Index k = -h; k < g.nz() + h; ++k)
            for (Index i = -h; i < g.nx() + h; ++i) {
                EXPECT_TRUE(std::isfinite(g.jacobian()(i, j, k)));
                EXPECT_GT(g.jacobian()(i, j, k), 0.0);
            }
}

TEST(Grid, RejectsBadSpecs) {
    auto make = [](const GridSpec& s) { Grid<double> g(s); };
    auto spec = base_spec();
    spec.halo = 2;
    EXPECT_THROW(make(spec), Error);
    spec = base_spec();
    spec.terrain = [](double, double) { return 20000.0; };  // above ztop
    EXPECT_THROW(make(spec), Error);
    spec = base_spec();
    spec.dx = 0.0;
    EXPECT_THROW(make(spec), Error);
}

TEST(Terrain, GeneratorsHaveDocumentedShapes) {
    const auto ridge = bell_ridge(400.0, 2000.0, 0.0);
    EXPECT_DOUBLE_EQ(ridge(0.0, 123.0), 400.0);       // peak, y-invariant
    EXPECT_DOUBLE_EQ(ridge(2000.0, 0.0), 200.0);      // half width
    const auto mtn = bell_mountain(400.0, 2000.0, 0.0, 0.0);
    EXPECT_DOUBLE_EQ(mtn(0.0, 0.0), 400.0);
    EXPECT_LT(mtn(2000.0, 0.0), 200.0);  // 3-D decays faster than ridge
    const auto hill = cosine_hill(300.0, 1000.0, 0.0, 0.0);
    EXPECT_DOUBLE_EQ(hill(0.0, 0.0), 300.0);
    EXPECT_DOUBLE_EQ(hill(1000.0, 0.0), 0.0);  // compact support
    EXPECT_DOUBLE_EQ(hill(5000.0, 5000.0), 0.0);
}

}  // namespace
}  // namespace asuca
