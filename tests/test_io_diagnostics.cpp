// Tests for the I/O writers and global diagnostics.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/core/diagnostics.hpp"
#include "src/core/initial.hpp"
#include "src/io/writers.hpp"

namespace asuca {
namespace {

namespace fs = std::filesystem;

struct TempDir {
    fs::path path;
    TempDir() : path(fs::temp_directory_path() / "asuca_io_test") {
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
    std::string file(const char* name) const { return (path / name).string(); }
};

TEST(IoWriters, CsvRoundTripsValues) {
    TempDir tmp;
    Array2<double> a(3, 2, 0);
    a(0, 0) = 1.5; a(1, 0) = -2.0; a(2, 0) = 0.25;
    a(0, 1) = 4.0; a(1, 1) = 5.0; a(2, 1) = 6.0;
    io::write_csv(tmp.file("a.csv"), a);

    std::ifstream in(tmp.file("a.csv"));
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "1.5,-2,0.25");
    std::getline(in, line);
    EXPECT_EQ(line, "4,5,6");
}

TEST(IoWriters, SliceCsvTakesRequestedLevel) {
    TempDir tmp;
    Array3<double> a({2, 2, 3}, 1, Layout::XZY);
    for (Index j = 0; j < 2; ++j)
        for (Index k = 0; k < 3; ++k)
            for (Index i = 0; i < 2; ++i)
                a(i, j, k) = static_cast<double>(100 * k + 10 * j + i);
    io::write_slice_csv(tmp.file("s.csv"), a, 2);
    std::ifstream in(tmp.file("s.csv"));
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "200,201");
}

TEST(IoWriters, PgmHasValidHeaderAndSize) {
    TempDir tmp;
    Array2<double> a(5, 4, 0);
    for (Index j = 0; j < 4; ++j)
        for (Index i = 0; i < 5; ++i)
            a(i, j) = static_cast<double>(i * j);
    io::write_pgm(tmp.file("a.pgm"), a);
    std::ifstream in(tmp.file("a.pgm"), std::ios::binary);
    std::string magic;
    int w = 0, h = 0, maxv = 0;
    in >> magic >> w >> h >> maxv;
    EXPECT_EQ(magic, "P5");
    EXPECT_EQ(w, 5);
    EXPECT_EQ(h, 4);
    EXPECT_EQ(maxv, 255);
    in.get();  // single whitespace after header
    std::vector<char> pixels(20);
    in.read(pixels.data(), 20);
    EXPECT_EQ(in.gcount(), 20);
}

TEST(IoWriters, ConstantFieldPgmDoesNotDivideByZero) {
    TempDir tmp;
    Array2<double> a(3, 3, 0, 7.0);
    EXPECT_NO_THROW(io::write_pgm(tmp.file("c.pgm"), a));
}

TEST(Diagnostics, TotalMassMatchesAnalyticVolumeIntegral) {
    GridSpec spec;
    spec.nx = 6;
    spec.ny = 5;
    spec.nz = 4;
    spec.dx = 100.0;
    spec.dy = 100.0;
    spec.ztop = 400.0;
    Grid<double> grid(spec);
    Array3<double> rho({6, 5, 4}, grid.halo(), grid.layout(), 2.0);
    // Flat terrain: J = 1, mass = rho * V.
    EXPECT_NEAR(total_mass(grid, rho), 2.0 * 600.0 * 500.0 * 400.0, 1e-6);
}

TEST(Diagnostics, CourantNumberScalesWithWind) {
    GridSpec spec;
    spec.nx = 6;
    spec.ny = 5;
    spec.nz = 4;
    spec.dx = 1000.0;
    spec.dy = 1000.0;
    spec.ztop = 4000.0;
    Grid<double> grid(spec);
    State<double> s(grid, SpeciesSet::dry());
    initialize_hydrostatic(grid, AtmosphereProfile::isentropic(300.0), 20.0,
                           0.0, s);
    EXPECT_NEAR(courant_number(grid, s, 10.0), 20.0 * 10.0 / 1000.0, 1e-6);
    EXPECT_NEAR(courant_number(grid, s, 20.0),
                2.0 * courant_number(grid, s, 10.0), 1e-9);
}

TEST(Diagnostics, FiniteCheckCatchesNan) {
    GridSpec spec;
    spec.nx = 4;
    spec.ny = 4;
    spec.nz = 4;
    Grid<double> grid(spec);
    State<double> s(grid, SpeciesSet::dry());
    initialize_hydrostatic(grid, AtmosphereProfile::isentropic(300.0), 0.0,
                           0.0, s);
    EXPECT_TRUE(state_is_finite(s));
    s.rhow(2, 2, 2) = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(state_is_finite(s));
}

}  // namespace
}  // namespace asuca
