// Typed tests: the core numerics templated on the scalar type must hold
// their invariants in float, double, and the instrumented CountingReal —
// the three instantiations the reproduction exercises (paper: SP headline
// runs, DP validation, PAPI-style counting).
#include <gtest/gtest.h>

#include "src/core/advection.hpp"
#include "src/core/boundary.hpp"
#include "src/core/diagnostics.hpp"
#include "src/core/initial.hpp"
#include "src/core/limiter.hpp"
#include "src/core/tridiagonal.hpp"
#include "src/instrument/counting_real.hpp"

namespace asuca {
namespace {

template <class T>
class TypedNumerics : public ::testing::Test {};

using ScalarTypes = ::testing::Types<float, double, CountedDouble>;

// gtest needs a name generator for readable output.
struct ScalarNames {
    template <class T>
    static std::string GetName(int) {
        if constexpr (std::is_same_v<T, float>) return "float";
        if constexpr (std::is_same_v<T, double>) return "double";
        return "CountedDouble";
    }
};

TYPED_TEST_SUITE(TypedNumerics, ScalarTypes, ScalarNames);

TYPED_TEST(TypedNumerics, KorenLimiterStaysTvd) {
    using T = TypeParam;
    const double samples[] = {-4.0, -1.0, 0.0, 0.3, 1.0, 2.5, 50.0};
    for (double r : samples) {
        const double psi = static_cast<double>(koren_psi(T(r)));
        EXPECT_GE(psi, 0.0);
        EXPECT_LE(psi, 2.0);
    }
    // Face value bounded by adjacent cells.
    const double f =
        static_cast<double>(koren_face_value(T(1.0), T(2.0), T(4.0)));
    EXPECT_GE(f, 2.0 - 1e-6);
    EXPECT_LE(f, 4.0 + 1e-6);
}

TYPED_TEST(TypedNumerics, TridiagonalSolvesPoisson) {
    using T = TypeParam;
    const std::size_t n = 12;
    std::vector<T> lo(n, T(-1)), di(n, T(2)), up(n, T(-1)), rhs(n),
        scratch(n);
    const double h = 1.0 / (n + 1);
    for (auto& r : rhs) r = T(h * h);
    solve_tridiagonal<T>(lo, di, up, rhs, scratch);
    for (std::size_t k = 0; k < n; ++k) {
        const double x = (k + 1) * h;
        EXPECT_NEAR(static_cast<double>(rhs[k]), 0.5 * x * (1.0 - x), 1e-5);
    }
}

TYPED_TEST(TypedNumerics, AdvectionConservesMass) {
    using T = TypeParam;
    GridSpec spec;
    spec.nx = 10;
    spec.ny = 8;
    spec.nz = 6;
    spec.terrain = bell_ridge(300.0, 2000.0, 5000.0);
    spec.ztop = 8000.0;
    Grid<T> grid(spec);
    State<T> state(grid, SpeciesSet::dry());
    initialize_hydrostatic(grid, AtmosphereProfile::constant_n(300.0, 0.01),
                           8.0, -3.0, state);
    apply_lateral_bc(state.rhou, LateralBc::Periodic, spec.nx, spec.ny);
    apply_lateral_bc(state.rhov, LateralBc::Periodic, spec.nx, spec.ny);
    apply_lateral_bc(state.rhow, LateralBc::Periodic, spec.nx, spec.ny);
    MassFluxes<T> flux(grid);
    compute_mass_fluxes(grid, state, flux);

    Array3<T> tend({spec.nx, spec.ny, spec.nz}, grid.halo(), grid.layout(),
                   T(0));
    continuity_tendency(grid, flux, tend);
    double total = 0.0, mag = 0.0;
    for (Index j = 0; j < spec.ny; ++j)
        for (Index k = 0; k < spec.nz; ++k)
            for (Index i = 0; i < spec.nx; ++i) {
                const double v = static_cast<double>(tend(i, j, k)) *
                                 static_cast<double>(grid.jacobian()(i, j, k)) *
                                 grid.dzeta(k);
                total += v;
                mag += std::abs(v);
            }
    const double tol = std::is_same_v<TypeParam, float> ? 1e-4 : 1e-11;
    EXPECT_LE(std::abs(total), tol * (mag + 1.0));
}

TYPED_TEST(TypedNumerics, EosRoundTrip) {
    using T = TypeParam;
    const T p0 = T(8.3e4);
    const T rt = eos_rhotheta(p0);
    const double back = static_cast<double>(eos_pressure(rt));
    const double tol = std::is_same_v<TypeParam, float> ? 30.0 : 1e-6;
    EXPECT_NEAR(back, 8.3e4, tol);
}

TEST(CountingInstantiation, GridAndStateConstruct) {
    // The instrumented scalar must support the entire construction path.
    GridSpec spec;
    spec.nx = 6;
    spec.ny = 6;
    spec.nz = 6;
    spec.terrain = bell_mountain(200.0, 1500.0, 3000.0, 3000.0);
    Grid<CountedDouble> grid(spec);
    State<CountedDouble> state(grid, SpeciesSet::warm_rain());
    FlopCounter::reset();
    initialize_hydrostatic(grid, AtmosphereProfile::constant_n(300.0, 0.01),
                           5.0, 0.0, state);
    EXPECT_GT(FlopCounter::value(), 0u);  // initialization does real math
}

}  // namespace
}  // namespace asuca
