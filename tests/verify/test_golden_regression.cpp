// Golden-regression tests: re-run the canonical configurations and compare
// against the baselines under tests/golden/. This TU is compiled at the
// library's optimization level (see tests/CMakeLists.txt) so the numbers
// here are the production numbers.
//
// A legitimate numerics change regenerates the baselines with
//   build/examples/golden_tool --regen
// and ships the .json diff in the same commit (see README.md).
#include <gtest/gtest.h>

#include "src/verify/golden.hpp"

#ifndef ASUCA_GOLDEN_DIR
#error "ASUCA_GOLDEN_DIR must point at tests/golden (set by CMake)"
#endif

namespace asuca::verify {
namespace {

class GoldenRegression : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenRegression, MatchesBaseline) {
    const std::string& name = GetParam();
    const GoldenRecord ref = load_record(ASUCA_GOLDEN_DIR, name);
    const GoldenRecord got = run_golden(name);
    const auto cmp = compare_records(ref, got);
    EXPECT_TRUE(cmp.ok()) << "golden mismatch for \"" << name
                          << "\" — if intended, regenerate with "
                             "golden_tool --regen and commit the diff:\n"
                          << cmp.report();
}

INSTANTIATE_TEST_SUITE_P(CanonicalRuns, GoldenRegression,
                         ::testing::ValuesIn(golden_run_names()),
                         [](const auto& info) { return info.param; });

TEST(GoldenRecordIo, JsonRoundTripIsExact) {
    GoldenRecord rec;
    rec.name = "roundtrip";
    rec.description = "synthetic";
    FieldSummary f;
    f.name = "rho";
    f.stats = {0.1234567890123456789, 1e300, -3.0e-17, 2.5};
    f.probes = {1.0 / 3.0, -0.0, 42.0};
    rec.fields.push_back(f);

    const auto back = record_from_json(io::json_parse(to_json(rec).dump()));
    ASSERT_EQ(back.fields.size(), 1u);
    // %.17g serialization round-trips doubles bit-exactly.
    EXPECT_EQ(back.fields[0].stats.min, f.stats.min);
    EXPECT_EQ(back.fields[0].stats.max, f.stats.max);
    EXPECT_EQ(back.fields[0].stats.mean, f.stats.mean);
    EXPECT_EQ(back.fields[0].stats.l2, f.stats.l2);
    EXPECT_EQ(back.fields[0].probes, f.probes);
    EXPECT_TRUE(compare_records(rec, back).ok());
}

TEST(GoldenRecordIo, CompareFlagsPerturbationsAndShapeChanges) {
    GoldenRecord ref;
    ref.name = "x";
    ref.fields.push_back({"rho", {1.0, 2.0, 1.5, 1.6}, {1.0, 2.0}});

    GoldenRecord same = ref;
    EXPECT_TRUE(compare_records(ref, same).ok());

    GoldenRecord bumped = ref;
    bumped.fields[0].stats.mean += 1e-6;
    const auto cmp = compare_records(ref, bumped);
    ASSERT_FALSE(cmp.ok());
    EXPECT_NE(cmp.report().find("rho.mean"), std::string::npos);

    // Below tolerance passes.
    GoldenRecord tiny = ref;
    tiny.fields[0].stats.mean += 1e-15;
    EXPECT_TRUE(compare_records(ref, tiny).ok());

    GoldenRecord extra = ref;
    extra.fields.push_back({"ghost", {}, {}});
    EXPECT_FALSE(compare_records(ref, extra).ok());
    GoldenRecord missing;
    missing.name = "x";
    EXPECT_FALSE(compare_records(ref, missing).ok());

    GoldenRecord probes = ref;
    probes.fields[0].probes.pop_back();
    EXPECT_FALSE(compare_records(ref, probes).ok());
}

TEST(GoldenRecordIo, RejectsForeignJson) {
    EXPECT_THROW(record_from_json(io::json_parse("{\"name\": \"x\"}")),
                 Error);
    EXPECT_THROW(record_from_json(io::json_parse("[1, 2]")), Error);
}

}  // namespace
}  // namespace asuca::verify
