// Property tests for the 2-D decomposition arithmetic (src/cluster/
// decomp.hpp): the overlap rule global_n = P*local_n - 2*halo*(P-1) must
// round-trip, halo strip byte counts must match hand-computed sizes, and
// the paper's Table I meshes must come out exactly.
#include <gtest/gtest.h>

#include "src/cluster/decomp.hpp"

namespace asuca::cluster {
namespace {

TEST(DecompProperties, GlobalMeshRoundTripsThroughOverlapRule) {
    // Sweep rank grids, local extents, and halo depths; recovering the
    // local mesh from the global one must be exact (integer) for every
    // combination the rule generates.
    for (const Index px : {1, 2, 3, 4, 7, 22}) {
        for (const Index py : {1, 2, 5, 24}) {
            for (const Index lx : {8, 17, 320}) {
                for (const Index ly : {8, 33, 256}) {
                    for (const Index halo : {1, 2, 3}) {
                        Decomp2D d;
                        d.px = px;
                        d.py = py;
                        d.local = {lx, ly, 48};
                        d.halo = halo;
                        const Int3 g = d.global_mesh();

                        // Forward rule.
                        EXPECT_EQ(g.x, px * lx - 2 * halo * (px - 1));
                        EXPECT_EQ(g.y, py * ly - 2 * halo * (py - 1));
                        EXPECT_EQ(g.z, 48);

                        // Round trip: local = (global + 2*halo*(P-1)) / P,
                        // exactly divisible by construction.
                        const Index nux = g.x + 2 * halo * (px - 1);
                        const Index nuy = g.y + 2 * halo * (py - 1);
                        EXPECT_EQ(nux % px, 0);
                        EXPECT_EQ(nuy % py, 0);
                        EXPECT_EQ(nux / px, lx);
                        EXPECT_EQ(nuy / py, ly);

                        // The interior owned uniquely by some rank never
                        // exceeds the local mesh.
                        EXPECT_LE(g.x, px * lx);
                        EXPECT_LE(g.y, py * ly);
                        EXPECT_EQ(d.gpu_count(), px * py);
                    }
                }
            }
        }
    }
}

TEST(DecompProperties, HaloBytesMatchHandComputedStripSizes) {
    for (const Index halo : {1, 2, 3}) {
        for (const Index lx : {16, 320}) {
            for (const Index ly : {16, 256}) {
                for (const Index lz : {48, 64}) {
                    Decomp2D d;
                    d.local = {lx, ly, lz};
                    d.halo = halo;
                    for (const std::size_t elem : {4u, 8u}) {
                        // x strip: halo columns of a full y-z plane.
                        EXPECT_EQ(d.x_halo_bytes(elem),
                                  static_cast<double>(halo * ly * lz) *
                                      static_cast<double>(elem));
                        // y strip: halo rows of a full x-z plane
                        // (contiguous in the xzy layout).
                        EXPECT_EQ(d.y_halo_bytes(elem),
                                  static_cast<double>(halo * lx * lz) *
                                      static_cast<double>(elem));
                    }
                }
            }
        }
    }
}

TEST(DecompProperties, MaxNeighborsCoversAllRankShapes) {
    Decomp2D d;
    EXPECT_EQ(d.max_neighbors(), 0);  // 1x1: no exchange at all
    d.px = 4;
    EXPECT_EQ(d.max_neighbors(), 2);  // 1-D strip: left + right
    d.py = 3;
    EXPECT_EQ(d.max_neighbors(), 4);  // 2-D interior rank
    d.px = 1;
    EXPECT_EQ(d.max_neighbors(), 2);
}

TEST(DecompProperties, Table1LargestConfigMatchesPaper) {
    // 22 x 24 GPUs x (320 x 256 x 48) local -> 6956 x 6052 x 48 global
    // (paper Table I, the 528-GPU 15-TFlops row).
    const auto configs = table1_configs();
    ASSERT_EQ(configs.size(), 14u);
    const Decomp2D& biggest = configs.back();
    EXPECT_EQ(biggest.px, 22);
    EXPECT_EQ(biggest.py, 24);
    EXPECT_EQ(biggest.gpu_count(), 528);
    const Int3 g = biggest.global_mesh();
    EXPECT_EQ(g.x, 6956);
    EXPECT_EQ(g.y, 6052);
    EXPECT_EQ(g.z, 48);

    // Every Table I row uses the paper's fixed local mesh and halo depth,
    // and the implied global mesh is strictly increasing in rank count.
    double prev_cells = 0.0;
    for (const auto& d : configs) {
        EXPECT_EQ(d.local.x, 320);
        EXPECT_EQ(d.local.y, 256);
        EXPECT_EQ(d.local.z, 48);
        EXPECT_EQ(d.halo, 2);
        const Int3 m = d.global_mesh();
        const double cells = static_cast<double>(m.x) *
                             static_cast<double>(m.y) *
                             static_cast<double>(m.z);
        EXPECT_GT(cells, prev_cells);
        prev_cells = cells;
    }
}

}  // namespace
}  // namespace asuca::cluster
