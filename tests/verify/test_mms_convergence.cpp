// Grid-convergence (MMS) tests: the production operators must converge at
// their design order on smooth data. Thresholds are set ~0.2 below the
// empirically measured orders so legitimate refactors pass while an
// order-destroying bug (a lopsided stencil, a wrong metric term, a missing
// factor of dx) fails loudly. SCOPED_TRACE prints the full error table on
// failure.
#include <gtest/gtest.h>

#include "src/verify/mms.hpp"

namespace asuca::verify {
namespace {

TEST(MmsConvergence, AdvectionSmoothRegionIsAtLeastSecondOrder) {
    // Away from the extrema (where the Koren limiter never clips on this
    // data), the kappa=1/3 reconstruction must deliver its design order.
    const auto r = advection_convergence<double>({32, 64, 128}, 10.0, 6.0,
                                                 /*smooth_region_only=*/true);
    SCOPED_TRACE(r.summary());
    EXPECT_GE(r.observed_order, 2.0) << r.summary();
    EXPECT_LE(r.observed_order, 3.5) << r.summary();
    for (std::size_t n = 1; n < r.samples.size(); ++n)
        EXPECT_LT(r.samples[n].error, r.samples[n - 1].error);
}

TEST(MmsConvergence, AdvectionGlobalNormShowsLimiterClipping) {
    // The global norm includes the extremum cells the limiter clips to
    // 1st order; TVD theory puts the resulting RMS order near 1.5. Pinning
    // the window both ways catches a broken limiter (order -> 1 globally)
    // AND a silently disabled one (order -> 2+ globally, i.e. the scheme
    // stopped being TVD).
    const auto r = advection_convergence<double>({16, 32, 64});
    SCOPED_TRACE(r.summary());
    EXPECT_GE(r.observed_order, 1.3) << r.summary();
    EXPECT_LE(r.observed_order, 1.9) << r.summary();
    for (std::size_t n = 1; n < r.samples.size(); ++n)
        EXPECT_LT(r.samples[n].error, r.samples[n - 1].error);
}

TEST(MmsConvergence, DiffusionIsSecondOrder) {
    const auto r = diffusion_convergence<double>({16, 32, 64});
    SCOPED_TRACE(r.summary());
    // Pure centered Laplacian: order 2 exactly, tight window.
    EXPECT_NEAR(r.observed_order, 2.0, 0.1) << r.summary();
}

TEST(MmsConvergence, AcousticCenteredStartsSecondOrder) {
    // beta = 0.5: the trapezoidal vertical solve makes the coarse-dtau
    // regime 2nd-order; the forward-backward horizontal/vertical
    // sequencing contributes an O(dtau) component that emerges under
    // refinement (measured: 1.78 -> 1.56 -> 1.31). Pin the structure: the
    // coarse pair must sit in the 2nd-order regime and no pair may
    // collapse to pure 1st order within this ladder.
    const auto r = acoustic_temporal_convergence<double>(/*beta=*/0.5);
    SCOPED_TRACE(r.summary());
    EXPECT_GE(r.pairwise_orders.front(), 1.6) << r.summary();
    for (const double p : r.pairwise_orders)
        EXPECT_GE(p, 1.15) << r.summary();
    for (std::size_t n = 1; n < r.samples.size(); ++n)
        EXPECT_LT(r.samples[n].error, r.samples[n - 1].error);
}

TEST(MmsConvergence, AcousticOffCenteringDegradesToFirstOrder) {
    // The production default beta = 0.6 trades order for acoustic damping;
    // verify the degradation really happens (a "fix" that silently recenters
    // the scheme would change the model's dissipation), and that it costs
    // accuracy relative to the centered scheme at equal dtau.
    const auto off = acoustic_temporal_convergence<double>(/*beta=*/0.6);
    SCOPED_TRACE(off.summary());
    EXPECT_GE(off.observed_order, 0.8) << off.summary();
    EXPECT_LE(off.observed_order, 1.5) << off.summary();
    const auto cen = acoustic_temporal_convergence<double>(/*beta=*/0.5);
    EXPECT_LT(cen.samples.back().error, off.samples.back().error)
        << cen.summary() << off.summary();
}

TEST(MmsConvergence, FullRk3StepConvergenceWhenCentered) {
    // Composite long step at beta = 0.5: the RK3 transport is high-order
    // but the acoustic forward-backward splitting error dominates under
    // refinement (measured: 1.69 -> 1.09). Coarse pair must stay near 2nd
    // order, every pair must converge at >= 1st order, errors must decay.
    const auto r = rk3_temporal_convergence<double>();
    SCOPED_TRACE(r.summary());
    EXPECT_GE(r.pairwise_orders.front(), 1.5) << r.summary();
    for (const double p : r.pairwise_orders)
        EXPECT_GE(p, 0.95) << r.summary();
    for (std::size_t n = 1; n < r.samples.size(); ++n)
        EXPECT_LT(r.samples[n].error, r.samples[n - 1].error);
}

TEST(MmsConvergence, ResultRejectsDegenerateLadders) {
    EXPECT_THROW(make_result("x", {{1.0, 0.1}}), Error);
    EXPECT_THROW(make_result("x", {{1.0, 0.1}, {2.0, 0.05}}), Error);
    EXPECT_THROW(make_result("x", {{2.0, 0.0}, {1.0, 0.0}}), Error);
    const auto r = make_result("x", {{2.0, 0.4}, {1.0, 0.1}});
    EXPECT_NEAR(r.observed_order, 2.0, 1e-12);
}

}  // namespace
}  // namespace asuca::verify
