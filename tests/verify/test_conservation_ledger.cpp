// Conservation-ledger tests: total mass (and every tracer mass, clipping
// disabled) must be conserved to round-off per step by the flux-form
// dycore under periodic boundaries; the rank-summed invariants of a
// decomposed run must agree with the single-domain integrals; and the
// TimeStepper/MultiDomain step hooks must fire exactly once per step.
#include <gtest/gtest.h>

#include "src/cluster/multidomain.hpp"
#include "src/core/scenarios.hpp"
#include "src/verify/invariants.hpp"

namespace asuca::verify {
namespace {

TEST(ConservationLedger, MassConservedToRoundoffPerStep) {
    auto cfg = scenarios::mountain_wave_config<double>(16, 8, 12,
                                                       /*with_physics=*/false);
    AsucaModel<double> model(cfg);
    scenarios::init_mountain_wave(model);

    ConservationLedger ledger;
    ledger.record(compute_invariants(model.grid(), model.state(), 0.0));
    model.stepper().step_hooks().add([&](const State<double>& s) {
        ledger.record(compute_invariants(model.grid(), s));
    });
    model.run(10);

    ASSERT_EQ(ledger.size(), 11u);  // initial + one per step
    // ISSUE acceptance bar: < 1e-12 relative per step. Telescoping flux
    // divergence -> observed drift is ~1e-16.
    EXPECT_LT(ledger.max_step_drift(&InvariantSnapshot::total_mass), 1e-12)
        << ledger.report(model.state().species);
    EXPECT_LT(std::abs(ledger.relative_drift(&InvariantSnapshot::total_mass)),
              1e-12);
}

TEST(ConservationLedger, TracerMassConservedWithoutClipping) {
    auto cfg = scenarios::mountain_wave_config<double>(16, 8, 12,
                                                       /*with_physics=*/true);
    cfg.microphysics = false;  // pure dynamics: tracers are conserved...
    cfg.stepper.clip_negative_tracers = false;  // ...only without clipping
    AsucaModel<double> model(cfg);
    scenarios::init_mountain_wave(model);
    ASSERT_GT(model.state().species.count(), 0u);

    ConservationLedger ledger;
    ledger.record(compute_invariants(model.grid(), model.state(), 0.0));
    model.stepper().step_hooks().add([&](const State<double>& s) {
        ledger.record(compute_invariants(model.grid(), s));
    });
    model.run(6);

    for (std::size_t n = 0; n < model.state().species.count(); ++n) {
        EXPECT_LT(ledger.max_step_tracer_drift(n), 1e-12)
            << "tracer " << n << "\n"
            << ledger.report(model.state().species);
    }
    EXPECT_LT(ledger.max_step_drift(&InvariantSnapshot::water_mass), 1e-12);
}

TEST(ConservationLedger, RankSumInvariantsMatchSingleDomain) {
    GridSpec spec;
    spec.nx = 24;
    spec.ny = 12;
    spec.nz = 10;
    spec.ztop = 10000.0;
    spec.terrain = bell_mountain(350.0, 3000.0, 12000.0, 6000.0);
    TimeStepperConfig scfg;
    scfg.dt = 4.0;
    scfg.n_short_steps = 6;
    scfg.diffusion.kh = 10.0;
    scfg.diffusion.kv = 1.0;
    scfg.sponge.z_start = 8000.0;
    const SpeciesSet species = SpeciesSet::dry();
    Grid<double> grid(spec);
    State<double> global(grid, species);
    initialize_hydrostatic(grid, AtmosphereProfile::constant_n(292.0, 0.011),
                           8.0, 3.0, global);

    cluster::MultiDomainRunner<double> runner(spec, 2, 2, species, scfg);
    runner.scatter(global);
    int observed = 0;
    runner.step_hooks().add(
        [&](cluster::MultiDomainRunner<double>&) { ++observed; });
    for (int n = 0; n < 3; ++n) runner.step();
    EXPECT_EQ(observed, 3);

    State<double> gathered(grid, species);
    runner.gather(gathered);
    const auto whole = compute_invariants(grid, gathered);
    const auto parts = compute_rank_sum_invariants(runner);

    // Same integrals, different summation association -> round-off only.
    auto close = [](double a, double b) {
        const double s = std::max({std::abs(a), std::abs(b), 1.0});
        return std::abs(a - b) / s;
    };
    EXPECT_LT(close(whole.total_mass, parts.total_mass), 1e-12);
    EXPECT_LT(close(whole.momentum_x, parts.momentum_x), 1e-12);
    EXPECT_LT(close(whole.momentum_y, parts.momentum_y), 1e-12);
    // Vertical momentum sums near-cancelling up/downdrafts, so relative
    // round-off against its own (small) magnitude runs a decade higher.
    EXPECT_LT(close(whole.momentum_z, parts.momentum_z), 1e-11);
    EXPECT_LT(close(whole.kinetic_energy, parts.kinetic_energy), 1e-12);
    EXPECT_LT(close(whole.internal_energy, parts.internal_energy), 1e-12);
    EXPECT_LT(close(whole.potential_energy, parts.potential_energy), 1e-12);
}

TEST(ConservationLedger, ReportListsEveryBudget) {
    auto cfg = scenarios::mountain_wave_config<double>(12, 6, 8,
                                                       /*with_physics=*/false);
    AsucaModel<double> model(cfg);
    scenarios::init_mountain_wave(model);
    ConservationLedger ledger;
    ledger.record(compute_invariants(model.grid(), model.state(), 0.0));
    model.step();
    ledger.record(
        compute_invariants(model.grid(), model.state(), model.time()));

    const std::string rep = ledger.report(model.state().species);
    for (const char* row : {"total mass", "dry mass", "momentum x",
                            "momentum z", "kinetic E", "potential E"}) {
        EXPECT_NE(rep.find(row), std::string::npos) << rep;
    }
}

TEST(ConservationLedger, ObserverIsDetachable) {
    auto cfg = scenarios::warm_bubble_config<double>(8, 8, 8);
    AsucaModel<double> model(cfg);
    scenarios::init_warm_bubble(model);
    int fired = 0;
    const auto sub = model.stepper().step_hooks().add(
        [&](const State<double>&) { ++fired; });
    model.step();
    EXPECT_TRUE(model.stepper().step_hooks().remove(sub));
    model.step();
    EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace asuca::verify
