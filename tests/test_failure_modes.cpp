// Failure-injection and stability-envelope tests: the model must fail
// loudly and detectably outside its stability region, and conserve what
// it promises inside it.
#include <gtest/gtest.h>

#include "src/core/scenarios.hpp"
#include "src/resilience/watchdog.hpp"

namespace asuca {
namespace {

TEST(FailureModes, AcousticCflViolationIsDetected) {
    // dt = 60 s with a single short step gives a horizontal sound CFL of
    // cs*dtau/dx ~ 340*20/1000 >> 1 on the first RK stage: the explicit
    // horizontal acoustic update must go unstable. The watchdog must not
    // merely notice (the old is_finite() poll) but attribute: a
    // structured finding naming the check, the field and the cell.
    auto cfg = scenarios::mountain_wave_config<double>(16, 8, 12, false);
    cfg.species = SpeciesSet::dry();
    cfg.stepper.dt = 60.0;
    cfg.stepper.n_short_steps = 1;
    AsucaModel<double> m(cfg);
    m.initialize(AtmosphereProfile::constant_n(288.0, 0.01), 10.0, 0.0);

    resilience::WatchdogConfig wcfg;
    wcfg.cfl_limit = 2.0;  // RK3 advective stability ends near 1.6
    const resilience::Watchdog<double> dog(wcfg);
    resilience::HealthReport report;
    for (int n = 0; n < 30 && report.healthy(); ++n) {
        m.step();
        dog.scan(m.grid(), m.state(), cfg.stepper.dt, 0, n, report);
    }
    ASSERT_FALSE(report.healthy());
    // The blow-up is caught as a non-finite value or a CFL excursion;
    // either way the finding is localized to a named field and cell.
    const auto& f = report.findings.front();
    EXPECT_TRUE(f.check == "nonfinite" || f.check == "cfl");
    EXPECT_FALSE(f.field.empty());
    EXPECT_GE(f.i, 0);
    EXPECT_LT(f.i, 16);
    EXPECT_NE(f.to_string().find(f.check), std::string::npos);
}

TEST(FailureModes, StableConfigSurvivesLongIntegration) {
    // The same case inside the stability envelope runs 100 steps clean.
    auto cfg = scenarios::mountain_wave_config<double>(16, 8, 12, false);
    cfg.species = SpeciesSet::dry();
    AsucaModel<double> m(cfg);
    m.initialize(AtmosphereProfile::constant_n(288.0, 0.01), 10.0, 0.0);
    m.run(100);
    EXPECT_TRUE(m.is_finite());
    EXPECT_LT(m.max_w(), 10.0);
}

TEST(FailureModes, TotalWaterBudgetClosesOverFullMoistCycle) {
    // Advection + saturation adjustment + autoconversion + accretion +
    // sedimentation: total water in the air plus accumulated surface
    // precipitation stays constant (up to the positivity clipping, which
    // is tiny for smooth fields).
    auto cfg = scenarios::real_case_config<double>(24, 24, 14);
    AsucaModel<double> m(cfg);
    scenarios::init_real_case(m);

    auto airborne_water = [&] {
        double sum = 0.0;
        for (const auto& q : m.state().tracers) {
            sum += total_tracer_mass(m.grid(), q);
        }
        return sum;
    };
    const double w0 = airborne_water();
    m.run(30);
    double fallen = 0.0;
    const auto& precip = m.microphysics().accumulated_precip();
    const double cell_area = m.grid().dx() * m.grid().dy();
    for (Index j = 0; j < 24; ++j)
        for (Index i = 0; i < 24; ++i) fallen += precip(i, j) * cell_area;
    const double w1 = airborne_water();
    EXPECT_GT(fallen, 0.0);  // it rained
    EXPECT_NEAR(w1 + fallen, w0, 2e-3 * w0);
}

TEST(FailureModes, CalmAtmosphereIsBoring) {
    // Nothing-in, nothing-out: a resting dry atmosphere over flat ground
    // produces no motion, no rain, no drift over a long run — and a
    // fully-armed watchdog agrees it is healthy throughout.
    auto cfg = scenarios::mountain_wave_config<double>(12, 8, 10);
    cfg.grid.terrain = flat_terrain();
    AsucaModel<double> m(cfg);
    m.initialize(AtmosphereProfile::constant_n(300.0, 0.01));
    const double mass0 = m.total_mass();

    resilience::WatchdogConfig wcfg;
    wcfg.cfl_limit = 2.0;
    wcfg.mass_drift_tol = 1e-9;
    const resilience::Watchdog<double> dog(wcfg);
    const double wmass0 =
        resilience::Watchdog<double>::total_mass(m.grid(), m.state());
    resilience::HealthReport report;
    for (int n = 0; n < 50; ++n) {
        m.step();
        dog.scan(m.grid(), m.state(), cfg.stepper.dt, 0, n, report);
        dog.check_mass(resilience::Watchdog<double>::total_mass(m.grid(),
                                                               m.state()),
                       wmass0, 0, n, report);
    }
    EXPECT_TRUE(report.healthy()) << report.to_string();
    EXPECT_LT(m.max_w(), 1e-9);
    EXPECT_NEAR(m.total_mass(), mass0, 1e-9 * mass0);
    const auto& precip = m.microphysics().accumulated_precip();
    for (Index j = 0; j < 8; ++j)
        for (Index i = 0; i < 12; ++i) EXPECT_EQ(precip(i, j), 0.0);
}

}  // namespace
}  // namespace asuca
