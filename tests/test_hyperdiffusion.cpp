// Tests of the 4th-order horizontal hyperdiffusion (scale-selective
// filter): it must damp 2-grid noise hard, leave long waves nearly alone,
// and vanish on smooth (constant) states.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/boundary.hpp"
#include "src/core/diagnostics.hpp"
#include "src/core/diffusion.hpp"
#include "src/core/initial.hpp"
#include "src/core/scenarios.hpp"

namespace asuca {
namespace {

struct HyperSetup {
    GridSpec spec;
    Grid<double> grid;
    State<double> state;
    Tendencies<double> tend;

    HyperSetup() : spec(make_spec()), grid(spec),
                   state(grid, SpeciesSet::dry()),
                   tend(grid, SpeciesSet::dry()) {
        initialize_hydrostatic(grid, AtmosphereProfile::isentropic(300.0),
                               0.0, 0.0, state);
        tend.clear();
    }

    static GridSpec make_spec() {
        GridSpec s;
        s.nx = 16;
        s.ny = 12;
        s.nz = 6;
        s.dx = 1000.0;
        s.dy = 1000.0;
        s.ztop = 6000.0;
        return s;
    }

    /// Superpose a u wave of wavenumber `waves` across the domain.
    void set_u_wave(Index waves, double amp) {
        const Index h = grid.halo();
        for (Index j = -h; j < spec.ny + h; ++j)
            for (Index k = 0; k < spec.nz; ++k)
                for (Index i = -h; i < spec.nx + 1 + h; ++i)
                    state.rhou(i, j, k) =
                        amp *
                        std::cos(2.0 * M_PI * waves *
                                 static_cast<double>(i) / spec.nx);
        apply_lateral_bc(state.rhou, LateralBc::Periodic, spec.nx, spec.ny);
    }
};

TEST(Hyperdiffusion, VanishesOnUniformState) {
    HyperSetup su;
    su.set_u_wave(0, 3.0);  // constant u
    DiffusionConfig cfg;
    cfg.k4h = 1e9;
    hyperdiffusion(su.grid, su.state, cfg, su.tend);
    EXPECT_LT(max_abs(su.tend.rhou), 1e-10);
    EXPECT_LT(max_abs(su.tend.rhotheta), 1e-10);
}

TEST(Hyperdiffusion, ScaleSelectivity) {
    // Damping rate of del^4 scales as k^4: the 2-grid wave (8 waves over
    // 16 cells) must be damped ~(8/1)^4 = 4096x harder than wavenumber 1.
    DiffusionConfig cfg;
    cfg.k4h = 1e8;

    HyperSetup long_wave;
    long_wave.set_u_wave(1, 1.0);
    hyperdiffusion(long_wave.grid, long_wave.state, cfg, long_wave.tend);
    const double damp_long = max_abs(long_wave.tend.rhou);

    HyperSetup grid_wave;
    grid_wave.set_u_wave(8, 1.0);
    hyperdiffusion(grid_wave.grid, grid_wave.state, cfg, grid_wave.tend);
    const double damp_grid = max_abs(grid_wave.tend.rhou);

    EXPECT_GT(damp_grid, 500.0 * damp_long);
    EXPECT_GT(damp_long, 0.0);
}

TEST(Hyperdiffusion, DampsNotAmplifies) {
    // One forward-Euler application must reduce the wave amplitude.
    HyperSetup su;
    su.set_u_wave(8, 1.0);
    DiffusionConfig cfg;
    cfg.k4h = 1e8;
    hyperdiffusion(su.grid, su.state, cfg, su.tend);
    const double dt = 1.0;
    double before = 0.0, after = 0.0;
    for (Index i = 0; i < su.spec.nx; ++i) {
        before += std::pow(su.state.rhou(i, 5, 2), 2);
        after += std::pow(su.state.rhou(i, 5, 2) + dt * su.tend.rhou(i, 5, 2),
                          2);
    }
    EXPECT_LT(after, before);
    EXPECT_GT(after, 0.0);  // not over-damped into oscillation
}

TEST(Hyperdiffusion, IntegratesStablyInTheModel) {
    auto cfg = scenarios::mountain_wave_config<double>(20, 8, 12);
    cfg.stepper.diffusion.k4h = 0.01 * std::pow(cfg.grid.dx, 4) /
                                (16.0 * cfg.stepper.dt);  // standard sizing
    AsucaModel<double> m(cfg);
    scenarios::init_mountain_wave(m);
    m.run(10);
    EXPECT_TRUE(m.is_finite());
    EXPECT_LT(m.max_w(), 10.0);
}

}  // namespace
}  // namespace asuca
