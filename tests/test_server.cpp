// Forecast-service specification (test-first): queue semantics, scenario
// canonicalization and cache keying, the degradation ladder, submission /
// deduplication / error paths, checkpoint-backed warm starts, ensemble
// fork determinism, and the bitwise server-vs-standalone guarantee.
//
// The concurrency stress/soak side lives in test_server_stress.cpp; this
// file pins the FUNCTIONAL contract every stress run leans on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/core/diagnostics.hpp"
#include "src/server/forecast_server.hpp"

namespace asuca::server {
namespace {

void expect_bitwise(const State<double>& a, const State<double>& b) {
    EXPECT_EQ(max_abs_diff(a.rho, b.rho), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhou, b.rhou), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhov, b.rhov), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhow, b.rhow), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhotheta, b.rhotheta), 0.0);
    EXPECT_EQ(max_abs_diff(a.p, b.p), 0.0);
    ASSERT_EQ(a.tracers.size(), b.tracers.size());
    for (std::size_t n = 0; n < a.tracers.size(); ++n) {
        EXPECT_EQ(max_abs_diff(a.tracers[n], b.tracers[n]), 0.0);
    }
}

ScenarioSpec small_spec(int steps = 2) {
    ScenarioSpec s;
    s.scenario = "warm_bubble";
    s.nx = 16;
    s.ny = 16;
    s.nz = 12;
    s.steps = steps;
    return s;
}

/// Every in-repo caller speaks the wire envelope API; this wraps a spec
/// the way an out-of-process client's frame would arrive.
wire::ForecastRequestV1 envelope(const ScenarioSpec& spec) {
    wire::ForecastRequestV1 req;
    req.spec = spec;
    return req;
}

// ---------------------------------------------------------------------
// Bounded request queue.
// ---------------------------------------------------------------------

TEST(ServerQueue, FifoOrderAndCapacity) {
    RequestQueue<int> q(4);
    EXPECT_EQ(q.capacity(), 4u);
    EXPECT_EQ(q.size(), 0u);
    for (int n = 0; n < 4; ++n) EXPECT_TRUE(q.try_push(n));
    EXPECT_EQ(q.size(), 4u);
    EXPECT_FALSE(q.try_push(99));  // full: non-blocking push sheds
    for (int n = 0; n < 4; ++n) {
        int got = -1;
        EXPECT_TRUE(q.pop(got));
        EXPECT_EQ(got, n);  // FIFO
    }
    EXPECT_EQ(q.size(), 0u);
}

TEST(ServerQueue, PushBlocksWhileFullUntilPop) {
    RequestQueue<int> q(1);
    ASSERT_TRUE(q.push(0));
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        EXPECT_TRUE(q.push(1));  // blocks until the consumer pops
        pushed.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(pushed.load());  // still blocked on a full queue
    int got = -1;
    EXPECT_TRUE(q.pop(got));
    EXPECT_EQ(got, 0);
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_TRUE(q.pop(got));
    EXPECT_EQ(got, 1);
}

TEST(ServerQueue, PopBlocksUntilPush) {
    RequestQueue<int> q(2);
    std::atomic<int> got{-1};
    std::thread consumer([&] {
        int v = -1;
        EXPECT_TRUE(q.pop(v));
        got.store(v);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(got.load(), -1);
    EXPECT_TRUE(q.push(7));
    consumer.join();
    EXPECT_EQ(got.load(), 7);
}

TEST(ServerQueue, CloseReleasesWaitersAndDrainsBacklog) {
    RequestQueue<int> q(1);
    ASSERT_TRUE(q.push(5));
    // A producer blocked on a full queue is released by close() -> false.
    std::thread producer([&] { EXPECT_FALSE(q.push(6)); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
    producer.join();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.push(7));      // admissions stopped
    EXPECT_FALSE(q.try_push(8));
    int got = -1;
    EXPECT_TRUE(q.pop(got));  // backlog survives close (drain-then-stop)
    EXPECT_EQ(got, 5);
    EXPECT_FALSE(q.pop(got));  // closed AND drained
    q.close();                 // idempotent
}

TEST(ServerQueue, CloseWakesBlockedPushWithoutEnqueueing) {
    // The negative path of push(): a producer blocked on a full queue at
    // the moment close() lands must wake with a CLEAN rejection — false,
    // and its item must never appear in the backlog (a half-enqueued
    // item after "admissions stopped" would be a lost-or-duplicated job).
    RequestQueue<int> q(1);
    ASSERT_TRUE(q.push(1));
    std::thread blocked([&] { EXPECT_FALSE(q.push(2)); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
    blocked.join();
    int got = -1;
    EXPECT_TRUE(q.pop(got));
    EXPECT_EQ(got, 1);          // only the pre-close item drains
    EXPECT_FALSE(q.pop(got));   // 2 was rejected, not enqueued
}

TEST(ServerQueue, PoisonReturnsBacklogAndReleasesEveryWaiter) {
    RequestQueue<int> q(2);
    ASSERT_TRUE(q.push(1));
    ASSERT_TRUE(q.push(2));
    // One producer blocked on full, one consumer about to block on a
    // queue poison() will empty before it can pop.
    std::thread producer([&] { EXPECT_FALSE(q.push(3)); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::deque<int> orphans = q.poison();
    producer.join();
    // Unlike close(), the backlog is NOT poppable — it came back to us.
    ASSERT_EQ(orphans.size(), 2u);
    EXPECT_EQ(orphans[0], 1);
    EXPECT_EQ(orphans[1], 2);
    int got = -1;
    EXPECT_FALSE(q.pop(got));   // consumers stop immediately
    EXPECT_FALSE(q.push(4));
    std::thread consumer([&] {
        int v = -1;
        EXPECT_FALSE(q.pop(v));  // a late consumer is released too
    });
    consumer.join();
}

TEST(ServerQueue, RequeueFrontEnqueuesPastTheCapacityBound) {
    RequestQueue<int> q(1);
    ASSERT_TRUE(q.push(10));
    EXPECT_FALSE(q.try_push(11));   // full: admission backpressure...
    EXPECT_TRUE(q.requeue(12));     // ...but the retry path never blocks
    EXPECT_EQ(q.size(), 2u);        // over capacity, by design
    int got = -1;
    EXPECT_TRUE(q.pop(got));
    EXPECT_EQ(got, 12);             // retried job jumps the backlog
    EXPECT_TRUE(q.pop(got));
    EXPECT_EQ(got, 10);
    q.close();
    EXPECT_FALSE(q.requeue(13));    // closed is the only rejection
}

// ---------------------------------------------------------------------
// Scenario canonicalization and cache keying.
// ---------------------------------------------------------------------

TEST(ServerScenario, EquivalentSpecsShareOneCanonicalKey) {
    // Irrelevant fields must not split the cache: a physics flag on
    // warm_bubble, an overlap mode on 1x1, perturbation fields with zero
    // amplitude.
    ScenarioSpec a = small_spec();
    ScenarioSpec b = small_spec();
    b.physics = true;          // warm_bubble forces physics off
    b.overlap = "pipeline";    // meaningless on a 1x1 decomposition
    b.member = 3;              // meaningless without a warm-start fork
    b.perturb_seed = 999;
    EXPECT_EQ(canonical_key(canonicalize(a)), canonical_key(canonicalize(b)));

    // Fields that DO change the product must split the key.
    ScenarioSpec c = small_spec(3);
    EXPECT_NE(canonical_key(canonicalize(a)), canonical_key(canonicalize(c)));
    ScenarioSpec d = small_spec();
    d.nx = 32;
    EXPECT_NE(canonical_key(canonicalize(a)), canonical_key(canonicalize(d)));
}

TEST(ServerScenario, RejectsNonsense) {
    ScenarioSpec s = small_spec();
    s.scenario = "tornado";
    EXPECT_THROW(canonicalize(s), Error);
    s = small_spec();
    s.nx = 4;  // below the minimum extent
    EXPECT_THROW(canonicalize(s), Error);
    s = small_spec();
    s.steps = 0;
    EXPECT_THROW(canonicalize(s), Error);
    s = small_spec();
    s.px = 2;  // decomposed runs are dry-dycore only
    s.scenario = "real_case";
    EXPECT_THROW(canonicalize(s), Error);
    s = small_spec();
    s.px = 2;
    s.overlap = "sideways";
    EXPECT_THROW(canonicalize(s), Error);
}

TEST(ServerScenario, DegradationLadderShedsHorizonThenResolution) {
    ScenarioSpec s = canonicalize(small_spec(8));
    EXPECT_EQ(max_degrade_level(s), 2);  // 16x16 coarsens to 8x8

    const ScenarioSpec l1 = apply_degradation(s, 1);
    EXPECT_EQ(l1.steps, 4);  // horizon halved
    EXPECT_EQ(l1.coarsen, 0);
    EXPECT_EQ(l1.nx, s.nx);

    const ScenarioSpec l2 = apply_degradation(s, 2);
    EXPECT_EQ(l2.steps, 4);
    EXPECT_EQ(l2.coarsen, 1);  // grid coarsened 2x...
    const auto cfg_full = build_config(s);
    const auto cfg_l2 = build_config(l2);
    EXPECT_EQ(cfg_l2.grid.nx, cfg_full.grid.nx / 2);
    // ...with dx doubled, so the physical domain is preserved.
    EXPECT_DOUBLE_EQ(cfg_l2.grid.dx, 2.0 * cfg_full.grid.dx);
    EXPECT_DOUBLE_EQ(cfg_l2.grid.nx * cfg_l2.grid.dx,
                     cfg_full.grid.nx * cfg_full.grid.dx);

    // Every ladder level is a distinct cached product.
    EXPECT_NE(canonical_key(s), canonical_key(l1));
    EXPECT_NE(canonical_key(l1), canonical_key(l2));

    // A grid that cannot coarsen stops at level 1 (horizon shedding
    // always works).
    ScenarioSpec tiny = small_spec(8);
    tiny.nx = 8;
    tiny.ny = 8;
    const ScenarioSpec t = canonicalize(tiny);
    EXPECT_EQ(max_degrade_level(t), 1);
    EXPECT_EQ(apply_degradation(t, 2).coarsen, 0);
    EXPECT_EQ(apply_degradation(t, 2).steps, 4);
}

// ---------------------------------------------------------------------
// Submission, deduplication, error paths.
// ---------------------------------------------------------------------

TEST(ServerSubmit, RunsARequestAndReportsDiagnostics) {
    ForecastServer server;
    ForecastHandle h = server.submit(envelope(small_spec()));
    const ForecastResult& res = h.wait();
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_EQ(res.steps_run, 2);
    EXPECT_NE(res.fingerprint, 0u);
    EXPECT_GT(res.total_mass, 0.0);
    EXPECT_GE(res.latency_ms, 0.0);
    EXPECT_EQ(res.degrade_level, 0);
    server.shutdown();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.submitted, 1u);
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.failed, 0u);
}

TEST(ServerSubmit, DeduplicatesEquivalentRequests) {
    ForecastServer server;
    ForecastHandle a = server.submit(envelope(small_spec()));
    // Same product, differently-filled struct: must attach, not re-run.
    ScenarioSpec same = small_spec();
    same.physics = true;
    same.perturb_seed = 77;
    ForecastHandle b = server.submit(envelope(same));
    EXPECT_FALSE(a.attached());
    EXPECT_TRUE(b.attached());
    EXPECT_EQ(a.wait().fingerprint, b.wait().fingerprint);
    server.shutdown();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.submitted, 1u);   // one execution...
    EXPECT_EQ(stats.dedup_hits, 1u);  // ...served both callers
    EXPECT_EQ(stats.completed, 1u);
}

TEST(ServerSubmit, UnknownWarmStartFailsCleanlyAndServerKeepsServing) {
    ForecastServer server;
    ScenarioSpec bad = small_spec();
    bad.warm_start = "no-such-analysis";
    // Hold the handle: failed entries leave the result cache, so the
    // handle alone keeps the result alive past wait().
    const ForecastHandle bad_handle = server.submit(envelope(bad));
    const ForecastResult& res = bad_handle.wait();
    EXPECT_FALSE(res.ok());
    EXPECT_NE(res.error.find("no-such-analysis"), std::string::npos);
    // The taxonomy blames the right party: the CLIENT named a
    // checkpoint the store does not have.
    EXPECT_EQ(res.code, ErrorCode::bad_request);
    // The failure neither wedged a worker nor poisoned the cache.
    const ForecastResult& good = server.submit(envelope(small_spec())).wait();
    EXPECT_TRUE(good.ok()) << good.error;
    server.shutdown();
    EXPECT_EQ(server.stats().failed, 1u);
    EXPECT_EQ(server.stats().completed, 1u);
}

TEST(ServerSubmit, ShedPolicyRejectsOnlyWhenOptedIn) {
    ServerConfig cfg;
    cfg.n_workers = 1;
    cfg.queue_capacity = 1;
    cfg.shed_when_full = true;
    cfg.degrade_under_load = false;
    cfg.cache_results = false;
    ForecastServer server(cfg);
    // Flood faster than one worker drains: some submissions must shed,
    // and every shed is reported as a clean per-request error.
    std::vector<ForecastHandle> handles;
    for (int n = 0; n < 12; ++n) handles.push_back(server.submit(envelope(small_spec())));
    std::size_t ok = 0, shed = 0;
    for (auto& h : handles) {
        const ForecastResult& res = h.wait();
        if (res.ok()) {
            ++ok;
        } else {
            EXPECT_NE(res.error.find("shed"), std::string::npos);
            EXPECT_EQ(res.code, ErrorCode::over_capacity);
            ++shed;
        }
    }
    server.shutdown();
    EXPECT_GE(ok, 1u);  // the first admission always runs
    EXPECT_EQ(shed, server.stats().shed);
    EXPECT_EQ(ok + shed, 12u);
}

TEST(ServerSubmit, DeprecatedSpecShimStillServes) {
    // The pre-envelope C++-object surface survives as a thin shim over
    // submit(ForecastRequestV1) — same execution path, same bits.
    ForecastServer server;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    const ForecastHandle shim = server.submit(small_spec());
#pragma GCC diagnostic pop
    const ForecastResult& via_shim = shim.wait();
    ASSERT_TRUE(via_shim.ok()) << via_shim.error;

    ForecastServer fresh;
    const ForecastResult& via_envelope =
        fresh.submit(envelope(small_spec())).wait();
    ASSERT_TRUE(via_envelope.ok()) << via_envelope.error;
    EXPECT_EQ(via_shim.fingerprint, via_envelope.fingerprint);
}

TEST(ServerSubmit, PerRequestDeadlineRidesTheEnvelope) {
    // A deadline_ms on the envelope overrides the server default for
    // that request only; with faults off it must not perturb anything.
    ForecastServer server;
    wire::ForecastRequestV1 req = envelope(small_spec());
    req.deadline_ms = 60000;
    const ForecastResult& res = server.submit(req).wait();
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_EQ(res.code, ErrorCode::none);
}

// ---------------------------------------------------------------------
// Warm starts and ensemble forking.
// ---------------------------------------------------------------------

TEST(ServerWarmStart, ContinuesBitwiseFromACapturedCheckpoint) {
    const ScenarioSpec spec = canonicalize(small_spec());

    // Reference: one model integrated 3 + 2 steps straight through.
    AsucaModel<double> reference(build_config(spec));
    init_model(reference, spec);
    reference.run(3);

    ServerConfig cfg;
    cfg.keep_state = true;
    ForecastServer server(cfg);
    server.checkpoints().capture("analysis", reference);
    reference.run(2);

    ScenarioSpec warm = spec;
    warm.warm_start = "analysis";
    warm.steps = 2;
    const ForecastResult& res = server.submit(envelope(warm)).wait();
    ASSERT_TRUE(res.ok()) << res.error;
    ASSERT_NE(res.state, nullptr);
    expect_bitwise(reference.state(), *res.state);
    EXPECT_EQ(res.fingerprint, state_fingerprint(reference.state()));
}

TEST(EnsembleFork, MemberSeedsAreWellSeparated) {
    EXPECT_NE(member_seed(1, 0), member_seed(1, 1));
    EXPECT_NE(member_seed(1, 0), member_seed(2, 0));
    EXPECT_EQ(member_seed(42, 7), member_seed(42, 7));
}

TEST(EnsembleFork, ExpansionIsDeterministicAndPerMember) {
    EnsembleRequest req;
    req.base = small_spec();
    req.base.warm_start = "analysis";
    req.n_members = 4;
    req.seed = 9;
    req.amplitude = 2.0e-3;
    const auto members = expand_members(req);
    const auto again = expand_members(req);
    ASSERT_EQ(members.size(), 4u);
    for (std::size_t m = 0; m < members.size(); ++m) {
        EXPECT_EQ(members[m].member, static_cast<int>(m));
        EXPECT_EQ(members[m].perturb_seed, again[m].perturb_seed);
        EXPECT_DOUBLE_EQ(members[m].perturb_amplitude, 2.0e-3);
    }
    // Distinct members are distinct cache products.
    EXPECT_NE(canonical_key(canonicalize(members[0])),
              canonical_key(canonicalize(members[1])));
}

TEST(EnsembleFork, PerturbationIsSeedDeterministic) {
    const ScenarioSpec spec = canonicalize(small_spec());
    AsucaModel<double> model(build_config(spec));
    init_model(model, spec);

    State<double> a = model.state();
    State<double> b = model.state();
    perturb_theta(a, 1234, 1.0e-3);
    perturb_theta(b, 1234, 1.0e-3);
    expect_bitwise(a, b);  // same seed, same bits

    State<double> c = model.state();
    perturb_theta(c, 1235, 1.0e-3);
    EXPECT_GT(max_abs_diff(a.rhotheta, c.rhotheta), 0.0);  // seeds matter
    EXPECT_EQ(max_abs_diff(a.rho, c.rho), 0.0);  // only theta is touched
}

// ---------------------------------------------------------------------
// The bitwise server-vs-standalone guarantee (fault injection off — the
// server path must add nothing to the numbers).
// ---------------------------------------------------------------------

TEST(ServerDeterminism, RequestMatchesStandaloneRunBitwise) {
    const ScenarioSpec spec = canonicalize(small_spec(3));

    // Standalone: a plain model run, no server machinery anywhere.
    AsucaModel<double> standalone(build_config(spec));
    init_model(standalone, spec);
    standalone.run(3);

    ServerConfig cfg;
    cfg.n_workers = 2;
    cfg.keep_state = true;
    ForecastServer server(cfg);
    const ForecastResult& res = server.submit(envelope(spec)).wait();
    ASSERT_TRUE(res.ok()) << res.error;
    ASSERT_NE(res.state, nullptr);
    expect_bitwise(standalone.state(), *res.state);
    EXPECT_EQ(res.fingerprint, state_fingerprint(standalone.state()));

    // And the executor invoked directly (what the stress harness uses as
    // its serial baseline) agrees too.
    const ForecastResult direct = run_forecast(spec, nullptr, true);
    EXPECT_EQ(direct.fingerprint, res.fingerprint);
    expect_bitwise(*direct.state, *res.state);
}

TEST(ServerDeterminism, DecomposedRequestMatchesAllOverlapModes) {
    // A 2x2 split-mode request (HaloChannel + TaskLayer under the
    // server's ScopedOverride) must equal the lockstep answer bitwise.
    ScenarioSpec spec = small_spec(2);
    spec.px = 2;
    spec.py = 2;
    spec.overlap = "none";
    const ForecastResult lockstep =
        run_forecast(canonicalize(spec), nullptr, true);
    ASSERT_TRUE(lockstep.ok()) << lockstep.error;

    ServerConfig cfg;
    cfg.keep_state = true;
    ForecastServer server(cfg);
    for (const char* overlap : {"split", "pipeline"}) {
        ScenarioSpec s = spec;
        s.overlap = overlap;
        const ForecastResult& res = server.submit(envelope(s)).wait();
        ASSERT_TRUE(res.ok()) << overlap << ": " << res.error;
        ASSERT_NE(res.state, nullptr);
        expect_bitwise(*lockstep.state, *res.state);
    }
}

}  // namespace
}  // namespace asuca::server
