// Additional coverage of the performance-model stack: whole-step
// estimation, saturation/occupancy behaviour, cluster variants (Fermi,
// CPU), and the substep accounting.
#include <gtest/gtest.h>

#include "src/cluster/step_model.hpp"
#include "src/instrument/calibration.hpp"

namespace asuca {
namespace {

const CalibrationResult& cal() {
    static const CalibrationResult c = [] {
        auto cfg = benchmark_model_config();
        return calibrate_flops(cfg, {16, 12, 12});
    }();
    return c;
}

TEST(StepEstimate, ScalesLinearlyInMeshAtSaturation) {
    gpusim::ExecutionOptions opt;
    opt.occupancy_model = false;  // isolate the linear part
    gpusim::RooflineModel model(gpusim::DeviceSpec::tesla_s1070(), opt);
    const auto small = gpusim::estimate_step(cal().records, model, 100.0);
    const auto large = gpusim::estimate_step(cal().records, model, 200.0);
    EXPECT_NEAR(large.flops / small.flops, 2.0, 1e-9);
    // Times: the per-launch overhead is constant, the rest doubles.
    EXPECT_GT(large.seconds, 1.9 * small.seconds - 1e-3);
    EXPECT_LT(large.seconds, 2.0 * small.seconds);
}

TEST(StepEstimate, OccupancyModelPenalizesSmallMeshes) {
    gpusim::RooflineModel model(gpusim::DeviceSpec::tesla_s1070(), {});
    const double v320x32 = 320.0 * 32 * 48 / cal().mesh.volume();
    const double v320x256 = 320.0 * 256 * 48 / cal().mesh.volume();
    const auto small = gpusim::estimate_step(cal().records, model, v320x32);
    const auto large = gpusim::estimate_step(cal().records, model, v320x256);
    // Paper Fig. 4: the small mesh runs at roughly half the GFlops.
    EXPECT_LT(small.gflops, 0.65 * large.gflops);
    EXPECT_GT(small.gflops, 0.3 * large.gflops);
}

TEST(StepModel, SubstepCountMatchesConfiguration) {
    // benchmark config uses 12 short steps per dt: RK3 stages run
    // round(12/3) + round(12/2) + 12 = 4 + 6 + 12 = 22 substeps.
    cluster::StepModelConfig cfg;
    cluster::StepModel model(cal(), cfg);
    EXPECT_EQ(model.substep_count(), 22);
}

TEST(StepModel, Tsubame20OutperformsTsubame12PerGpu) {
    cluster::StepModelConfig c12;
    c12.decomp.px = 22;
    c12.decomp.py = 24;
    const auto r12 = cluster::StepModel(cal(), c12).run();

    auto c20 = c12;
    c20.cluster = cluster::ClusterSpec::tsubame20();
    const auto r20 = cluster::StepModel(cal(), c20).run();
    EXPECT_GT(r20.gflops_per_gpu, 1.2 * r12.gflops_per_gpu);
    // More bandwidth hides a larger comm fraction.
    const double hid12 = 1.0 - (r12.total_s - r12.compute_s) /
                                   (r12.mpi_s + r12.pcie_s);
    const double hid20 = 1.0 - (r20.total_s - r20.compute_s) /
                                   (r20.mpi_s + r20.pcie_s);
    EXPECT_GE(hid20, hid12 - 1e-9);
}

TEST(StepModel, CpuClusterIsFarSlower) {
    cluster::StepModelConfig gpu;
    gpu.decomp.px = 6;
    gpu.decomp.py = 9;
    const auto rg = cluster::StepModel(cal(), gpu).run();

    auto cpu = gpu;
    cpu.cluster = cluster::ClusterSpec::tsubame12_cpu();
    cpu.exec.precision = Precision::Double;
    cpu.exec.layout = Layout::ZXY;
    const auto rc = cluster::StepModel(cal(), cpu).run();
    // Paper Fig. 10: the CPU line is far below the GPU lines.
    EXPECT_GT(rg.tflops_total, 20.0 * rc.tflops_total);
}

TEST(StepModel, SingleRankHasNoCommunication) {
    cluster::StepModelConfig cfg;
    cfg.decomp.px = 1;
    cfg.decomp.py = 1;
    const auto r = cluster::StepModel(cal(), cfg).run();
    EXPECT_EQ(r.mpi_s, 0.0);
    EXPECT_EQ(r.pcie_s, 0.0);
    EXPECT_NEAR(r.total_s, r.compute_s, 1e-12);
}

TEST(StepModel, FlopsScaleWithLocalMesh) {
    cluster::StepModelConfig a;
    auto b = a;
    b.decomp.local = {160, 128, 48};
    const double fa = cluster::StepModel(cal(), a).step_flops();
    const double fb = cluster::StepModel(cal(), b).step_flops();
    EXPECT_NEAR(fa / fb, 4.0, 1e-9);
}

}  // namespace
}  // namespace asuca
