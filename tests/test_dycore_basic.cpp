// End-to-end sanity of the dynamical core: steadiness of balanced states,
// mass conservation, finiteness over terrain.
#include <gtest/gtest.h>

#include "src/core/model.hpp"

namespace asuca {
namespace {

ModelConfig<double> small_config() {
    ModelConfig<double> cfg;
    cfg.grid.nx = 16;
    cfg.grid.ny = 12;
    cfg.grid.nz = 10;
    cfg.grid.dx = 1000.0;
    cfg.grid.dy = 1000.0;
    cfg.grid.ztop = 10000.0;
    cfg.stepper.dt = 2.0;
    cfg.stepper.n_short_steps = 6;
    return cfg;
}

TEST(DycoreBasic, BalancedStateStaysSteadyFlatTerrain) {
    auto cfg = small_config();
    AsucaModel<double> model(cfg);
    model.initialize(AtmosphereProfile::constant_n(300.0, 0.01));
    const double mass0 = model.total_mass();
    model.run(5);
    EXPECT_TRUE(model.is_finite());
    // A resting hydrostatic state over flat terrain is an exact discrete
    // steady state: the deviations never leave zero (round-off only).
    EXPECT_LT(model.max_w(), 1e-10);
    EXPECT_NEAR(model.total_mass(), mass0, 1e-8 * mass0);
}

TEST(DycoreBasic, UniformWindOverFlatTerrainStaysUniform) {
    auto cfg = small_config();
    AsucaModel<double> model(cfg);
    model.initialize(AtmosphereProfile::constant_n(300.0, 0.01), 10.0, 0.0);
    model.run(5);
    EXPECT_TRUE(model.is_finite());
    // Horizontal advection of a horizontally uniform state is zero;
    // vertical structure is advected nowhere. w stays tiny.
    EXPECT_LT(model.max_w(), 1e-6);
    // u stays close to 10 m/s everywhere.
    const auto& s = model.state();
    for (Index j = 0; j < cfg.grid.ny; ++j)
        for (Index k = 0; k < cfg.grid.nz; ++k)
            for (Index i = 0; i < cfg.grid.nx; ++i) {
                const double rf = 0.5 * (s.rho(i - 1, j, k) + s.rho(i, j, k));
                EXPECT_NEAR(s.rhou(i, j, k) / rf, 10.0, 1e-6);
            }
}

TEST(DycoreBasic, MassConservedWithMountainFlow) {
    auto cfg = small_config();
    cfg.grid.terrain = bell_ridge(400.0, 2000.0, 8000.0);
    cfg.stepper.sponge.z_start = 7000.0;
    AsucaModel<double> model(cfg);
    model.initialize(AtmosphereProfile::constant_n(288.0, 0.012), 10.0, 0.0);
    const double mass0 = model.total_mass();
    model.run(10);
    EXPECT_TRUE(model.is_finite());
    EXPECT_NEAR(model.total_mass(), mass0, 1e-9 * mass0);
    // Mountain flow must generate some vertical motion.
    EXPECT_GT(model.max_w(), 1e-6);
}

TEST(DycoreBasic, WarmBubbleRises) {
    auto cfg = small_config();
    cfg.grid.nz = 16;
    AsucaModel<double> model(cfg);
    model.initialize(AtmosphereProfile::constant_n(300.0, 0.005));
    add_theta_bubble(model.grid(), 2.0, 8000.0, 6000.0, 2500.0, 3000.0,
                     3000.0, 1500.0, model.state());
    model.stepper().apply_state_bcs(model.state());
    model.run(20);
    EXPECT_TRUE(model.is_finite());
    // The buoyant bubble must produce upward motion: find max w sign.
    const auto& s = model.state();
    double wmax = -1e30;
    for (Index j = 0; j < cfg.grid.ny; ++j)
        for (Index k = 1; k < cfg.grid.nz; ++k)
            for (Index i = 0; i < cfg.grid.nx; ++i) {
                const double rf = 0.5 * (s.rho(i, j, k - 1) + s.rho(i, j, k));
                wmax = std::max(wmax, s.rhow(i, j, k) / rf);
            }
    EXPECT_GT(wmax, 0.05);
}

}  // namespace
}  // namespace asuca
