// Bitwise determinism of the concurrent multi-domain executor: every
// overlap mode (kernel splitting, tracer pipelining, density-theta
// fusion) must reproduce the lockstep reference runner exactly, across
// decomposition shapes and step counts — the paper's Sec. V-A overlap
// methods change only WHEN work happens, never what is computed.
#include <gtest/gtest.h>

#include <string>

#include "src/cluster/multidomain.hpp"
#include "src/core/diagnostics.hpp"
#include "src/core/initial.hpp"

namespace asuca::cluster {
namespace {

GridSpec make_global(TerrainFunction terrain) {
    GridSpec s;
    s.nx = 24;
    s.ny = 12;
    s.nz = 10;
    s.dx = 1000.0;
    s.dy = 1000.0;
    s.ztop = 10000.0;
    s.terrain = std::move(terrain);
    return s;
}

TimeStepperConfig make_stepper_cfg() {
    TimeStepperConfig cfg;
    cfg.dt = 4.0;
    cfg.n_short_steps = 6;
    cfg.diffusion.kh = 10.0;
    cfg.diffusion.kv = 1.0;
    cfg.sponge.z_start = 8000.0;
    return cfg;
}

void init_case(const Grid<double>& grid, const SpeciesSet& species,
               State<double>& state) {
    initialize_hydrostatic(grid, AtmosphereProfile::constant_n(292.0, 0.011),
                           8.0, 3.0, state);
    if (species.contains(Species::Vapor)) {
        set_relative_humidity(
            grid, [](double z) { return z < 2000.0 ? 0.8 : 0.3; }, state);
    }
}

struct OverlapCase {
    Index px, py;
    OverlapMode mode;
    int steps;
};

std::string mode_name(OverlapMode m) {
    switch (m) {
        case OverlapMode::None: return "none";
        case OverlapMode::Split: return "split";
        case OverlapMode::SplitPipeline: return "pipeline";
    }
    return "unknown";
}

class MultiDomainOverlap : public ::testing::TestWithParam<OverlapCase> {};

TEST_P(MultiDomainOverlap, BitwiseIdenticalToLockstep) {
    const auto c = GetParam();
    const auto spec = make_global(
        bell_mountain(350.0, 3000.0, 12000.0, 6000.0));
    const auto cfg = make_stepper_cfg();
    const auto species = SpeciesSet::warm_rain();

    Grid<double> grid(spec);
    State<double> initial(grid, species);
    init_case(grid, species, initial);

    // Reference: the lockstep runner on the same decomposition.
    MultiDomainRunner<double> lockstep(spec, c.px, c.py, species, cfg);
    lockstep.scatter(initial);
    for (int n = 0; n < c.steps; ++n) lockstep.step();
    State<double> ref(grid, species);
    lockstep.gather(ref);

    // Concurrent executor under test.
    MultiDomainConfig md;
    md.overlap = c.mode;
    md.threads_per_rank = 2;
    MultiDomainRunner<double> overlapped(spec, c.px, c.py, species, cfg, md);
    overlapped.scatter(initial);
    for (int n = 0; n < c.steps; ++n) overlapped.step();
    State<double> got(grid, species);
    overlapped.gather(got);

    EXPECT_EQ(max_abs_diff(ref.rho, got.rho), 0.0);
    EXPECT_EQ(max_abs_diff(ref.rhou, got.rhou), 0.0);
    EXPECT_EQ(max_abs_diff(ref.rhov, got.rhov), 0.0);
    EXPECT_EQ(max_abs_diff(ref.rhow, got.rhow), 0.0);
    EXPECT_EQ(max_abs_diff(ref.rhotheta, got.rhotheta), 0.0);
    EXPECT_EQ(max_abs_diff(ref.p, got.p), 0.0);
    for (std::size_t n = 0; n < species.count(); ++n) {
        EXPECT_EQ(max_abs_diff(ref.tracers[n], got.tracers[n]), 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, MultiDomainOverlap,
    ::testing::Values(
        // Shapes obey the concurrent-mode floor nxl, nyl >= 2*halo = 6.
        OverlapCase{2, 1, OverlapMode::Split, 2},
        OverlapCase{2, 1, OverlapMode::SplitPipeline, 2},
        OverlapCase{1, 2, OverlapMode::Split, 2},
        OverlapCase{1, 2, OverlapMode::SplitPipeline, 2},
        OverlapCase{2, 2, OverlapMode::Split, 1},
        OverlapCase{2, 2, OverlapMode::Split, 3},
        OverlapCase{2, 2, OverlapMode::SplitPipeline, 1},
        OverlapCase{2, 2, OverlapMode::SplitPipeline, 3},
        OverlapCase{4, 2, OverlapMode::Split, 2},
        OverlapCase{4, 2, OverlapMode::SplitPipeline, 2}),
    [](const auto& info) {
        return std::to_string(info.param.px) + "x" +
               std::to_string(info.param.py) + "_" +
               mode_name(info.param.mode) + "_" +
               std::to_string(info.param.steps) + "step";
    });

TEST(MultiDomainOverlap, MatchesSingleDomainBitwise) {
    // Transitivity check straight to the single-domain stepper: the
    // pipelined executor (all three overlap methods on) equals it too.
    const auto spec = make_global(
        bell_mountain(350.0, 3000.0, 12000.0, 6000.0));
    const auto cfg = make_stepper_cfg();
    const auto species = SpeciesSet::warm_rain();

    Grid<double> grid(spec);
    State<double> ref(grid, species);
    init_case(grid, species, ref);
    TimeStepper<double> stepper(grid, species, cfg);
    State<double> initial = ref;
    for (int n = 0; n < 3; ++n) stepper.step(ref);

    MultiDomainConfig md;
    md.overlap = OverlapMode::SplitPipeline;
    MultiDomainRunner<double> runner(spec, 2, 2, species, cfg, md);
    runner.scatter(initial);
    for (int n = 0; n < 3; ++n) runner.step();
    State<double> got(grid, species);
    runner.gather(got);

    EXPECT_EQ(max_abs_diff(ref.rho, got.rho), 0.0);
    EXPECT_EQ(max_abs_diff(ref.rhou, got.rhou), 0.0);
    EXPECT_EQ(max_abs_diff(ref.rhov, got.rhov), 0.0);
    EXPECT_EQ(max_abs_diff(ref.rhow, got.rhow), 0.0);
    EXPECT_EQ(max_abs_diff(ref.rhotheta, got.rhotheta), 0.0);
    for (std::size_t n = 0; n < species.count(); ++n) {
        EXPECT_EQ(max_abs_diff(ref.tracers[n], got.tracers[n]), 0.0);
    }
}

TEST(MultiDomainOverlap, RejectsSubdomainsSmallerThanTwoHalos) {
    const auto spec = make_global(flat_terrain());
    MultiDomainConfig md;
    md.overlap = OverlapMode::Split;
    // 12 / 3 = 4 rows per rank < 2 * halo(3): the split kernel frames
    // would overlap, so the constructor must refuse.
    EXPECT_THROW(MultiDomainRunner<double>(spec, 1, 3, SpeciesSet::dry(),
                                           make_stepper_cfg(), md),
                 Error);
}

}  // namespace
}  // namespace asuca::cluster
