// Tests for the multi-GPU decomposition and the step/overlap model.
#include <gtest/gtest.h>

#include "src/cluster/decomp.hpp"
#include "src/cluster/step_model.hpp"

namespace asuca::cluster {
namespace {

TEST(Decomp, Table1MeshSizesReproduceExactly) {
    // Every row of the paper's Table I.
    struct Row {
        Index px, py, gx, gy;
    };
    const Row rows[] = {
        {2, 3, 636, 760},     {4, 5, 1268, 1264},   {6, 9, 1900, 2272},
        {8, 10, 2532, 2524},  {10, 12, 3164, 3028}, {12, 14, 3796, 3532},
        {12, 16, 3796, 4036}, {14, 18, 4428, 4540}, {16, 20, 5060, 5044},
        {18, 20, 5692, 5044}, {18, 22, 5692, 5548}, {20, 22, 6324, 5548},
        {20, 24, 6324, 6052}, {22, 24, 6956, 6052},
    };
    for (const auto& r : rows) {
        Decomp2D d;
        d.px = r.px;
        d.py = r.py;
        const auto g = d.global_mesh();
        EXPECT_EQ(g.x, r.gx) << r.px << "x" << r.py;
        EXPECT_EQ(g.y, r.gy) << r.px << "x" << r.py;
        EXPECT_EQ(g.z, 48);
    }
    EXPECT_EQ(table1_configs().size(), 14u);
    EXPECT_EQ(table1_configs().back().gpu_count(), 528);
}

TEST(Decomp, HaloBytesScaleWithFaces) {
    Decomp2D d;
    d.px = d.py = 4;
    EXPECT_DOUBLE_EQ(d.x_halo_bytes(4), 2.0 * 256 * 48 * 4);
    EXPECT_DOUBLE_EQ(d.y_halo_bytes(4), 2.0 * 320 * 48 * 4);
}

class StepModelTest : public ::testing::Test {
  protected:
    static CalibrationResult& calibration() {
        static CalibrationResult cal = [] {
            auto cfg = benchmark_model_config();
            return calibrate_flops(cfg, {16, 12, 12});
        }();
        return cal;
    }

    static StepModelConfig base_config() {
        StepModelConfig c;
        c.decomp.px = 22;
        c.decomp.py = 24;
        c.exec.precision = Precision::Single;
        return c;
    }
};

TEST_F(StepModelTest, OverlapBeatsNonOverlap) {
    auto cfg = base_config();
    cfg.overlap = true;
    const auto with = StepModel(calibration(), cfg).run();
    cfg.overlap = false;
    cfg.overlap_tracers = false;
    cfg.fuse_density_theta = false;
    const auto without = StepModel(calibration(), cfg).run();
    EXPECT_LT(with.total_s, without.total_s);
    // Paper Sec. V-B: ~11-14% improvement at 528 GPUs. Accept a band.
    const double gain = (without.total_s - with.total_s) / without.total_s;
    EXPECT_GT(gain, 0.03);
    EXPECT_LT(gain, 0.40);
}

TEST_F(StepModelTest, DividedKernelsCostMoreComputeButWinOverall) {
    auto cfg = base_config();
    const auto with = StepModel(calibration(), cfg).run();
    // Paper Fig. 9: the divided kernels' total compute exceeds the single
    // kernel in all cases because of reduced per-kernel parallelism.
    for (const auto& row : with.short_step_rows) {
        const double divided =
            row.inner_s + row.boundary_x_s + row.boundary_y_s;
        EXPECT_GT(divided, row.whole_s) << row.name;
        EXPECT_LT(divided, 2.0 * row.whole_s) << row.name;
    }
}

TEST_F(StepModelTest, CommunicationPartiallyHidden) {
    auto cfg = base_config();
    const auto r = StepModel(calibration(), cfg).run();
    const double comm = r.mpi_s + r.pcie_s;
    const double exposed = r.total_s - r.compute_s;
    // Paper Sec. V-B: roughly half the communication is hidden.
    EXPECT_LT(exposed, comm);
    EXPECT_GT(exposed, 0.0);
    const double hidden_frac = 1.0 - exposed / comm;
    EXPECT_GT(hidden_frac, 0.25);
    EXPECT_LT(hidden_frac, 0.95);
}

TEST_F(StepModelTest, WeakScalingEfficiencyAbove90Percent) {
    // Time per step of the largest config vs the 6-GPU config.
    auto cfg6 = base_config();
    cfg6.decomp.px = 2;
    cfg6.decomp.py = 3;
    const auto r6 = StepModel(calibration(), cfg6).run();
    auto cfg528 = base_config();
    const auto r528 = StepModel(calibration(), cfg528).run();
    const double efficiency = r6.total_s / r528.total_s;
    EXPECT_GT(efficiency, 0.85);
    EXPECT_LE(efficiency, 1.0 + 1e-9);
    // Per-GPU throughput must be nearly flat -> TFlops ~ linear in GPUs.
    EXPECT_NEAR(r528.tflops_total / r6.tflops_total, 528.0 / 6.0 * efficiency,
                1.0);
}

TEST_F(StepModelTest, SinglePrecisionFasterThanDouble) {
    auto cfg = base_config();
    const auto sp = StepModel(calibration(), cfg).run();
    cfg.exec.precision = Precision::Double;
    const auto dp = StepModel(calibration(), cfg).run();
    EXPECT_LT(sp.total_s, dp.total_s);
    EXPECT_GT(sp.gflops_per_gpu, 2.0 * dp.gflops_per_gpu);
}

TEST_F(StepModelTest, FusionHelpsWhenDensityKernelIsShort) {
    auto cfg = base_config();
    cfg.fuse_density_theta = true;
    const auto fused = StepModel(calibration(), cfg).run();
    cfg.fuse_density_theta = false;
    const auto split = StepModel(calibration(), cfg).run();
    // Method 3 must not hurt, and normally helps a little.
    EXPECT_LE(fused.total_s, split.total_s * 1.005);
}

TEST_F(StepModelTest, MoreMpiBandwidthShortensStep) {
    auto cfg = base_config();
    const auto base = StepModel(calibration(), cfg).run();
    cfg.cluster.mpi_eff_gbs *= 4.0;
    cfg.cluster.pcie_eff_gbs *= 4.0;
    const auto fat = StepModel(calibration(), cfg).run();
    EXPECT_LT(fat.total_s, base.total_s);
}

}  // namespace
}  // namespace asuca::cluster
