// Unit tests for the halo-aware Array3 container and memory layouts.
#include <gtest/gtest.h>

#include "src/field/array3.hpp"

namespace asuca {
namespace {

TEST(Layout, StridesZXY) {
    // kij-ordering: z is unit stride, then x, then y.
    const Strides s = make_strides(Layout::ZXY, {4, 5, 6});
    EXPECT_EQ(s.sz, 1);
    EXPECT_EQ(s.sx, 6);
    EXPECT_EQ(s.sy, 24);
    EXPECT_EQ(unit_stride_axis(Layout::ZXY), 'z');
}

TEST(Layout, StridesXZY) {
    // GPU ordering: x is unit stride, then z, then y.
    const Strides s = make_strides(Layout::XZY, {4, 5, 6});
    EXPECT_EQ(s.sx, 1);
    EXPECT_EQ(s.sz, 4);
    EXPECT_EQ(s.sy, 24);
    EXPECT_EQ(unit_stride_axis(Layout::XZY), 'x');
}

class Array3LayoutTest : public ::testing::TestWithParam<Layout> {};

TEST_P(Array3LayoutTest, RoundTripsUniqueValues) {
    Array3<double> a({5, 4, 3}, 2, GetParam());
    // Write a distinct value at every (halo-inclusive) index, read back.
    for (Index j = -2; j < 6; ++j)
        for (Index k = -2; k < 5; ++k)
            for (Index i = -2; i < 7; ++i)
                a(i, j, k) = 100.0 * static_cast<double>(i) +
                             10.0 * static_cast<double>(j) +
                             static_cast<double>(k);
    for (Index j = -2; j < 6; ++j)
        for (Index k = -2; k < 5; ++k)
            for (Index i = -2; i < 7; ++i)
                EXPECT_EQ(a(i, j, k), 100.0 * static_cast<double>(i) +
                                          10.0 * static_cast<double>(j) +
                                          static_cast<double>(k));
}

TEST_P(Array3LayoutTest, OffsetsAreUniqueAndInRange) {
    Array3<float> a({4, 3, 5}, 1, GetParam());
    std::vector<int> hits(a.size(), 0);
    for (Index j = -1; j < 4; ++j)
        for (Index k = -1; k < 6; ++k)
            for (Index i = -1; i < 5; ++i) {
                const Index off = a.offset(i, j, k);
                ASSERT_GE(off, 0);
                ASSERT_LT(static_cast<std::size_t>(off), a.size());
                ++hits[static_cast<std::size_t>(off)];
            }
    for (int h : hits) EXPECT_EQ(h, 1);
}

TEST_P(Array3LayoutTest, UnitStrideMatchesLayout) {
    Array3<double> a({4, 4, 4}, 1, GetParam());
    if (GetParam() == Layout::ZXY) {
        EXPECT_EQ(a.offset(0, 0, 1) - a.offset(0, 0, 0), 1);
    } else {
        EXPECT_EQ(a.offset(1, 0, 0) - a.offset(0, 0, 0), 1);
    }
}

INSTANTIATE_TEST_SUITE_P(BothLayouts, Array3LayoutTest,
                         ::testing::Values(Layout::ZXY, Layout::XZY),
                         [](const auto& info) {
                             return info.param == Layout::ZXY ? "kij" : "xzy";
                         });

TEST(Array3, RelaidPreservesValuesAcrossLayouts) {
    Array3<double> a({6, 5, 7}, 2, Layout::ZXY);
    for (Index j = -2; j < 7; ++j)
        for (Index k = -2; k < 9; ++k)
            for (Index i = -2; i < 8; ++i)
                a(i, j, k) = static_cast<double>(a.offset(i, j, k)) * 0.25;
    Array3<double> b = a.relaid(Layout::XZY);
    EXPECT_EQ(b.layout(), Layout::XZY);
    for (Index j = -2; j < 7; ++j)
        for (Index k = -2; k < 9; ++k)
            for (Index i = -2; i < 8; ++i)
                EXPECT_EQ(b(i, j, k), a(i, j, k));
}

TEST(Array3, MaxAbsDiffDetectsSingleElementChange) {
    Array3<double> a({3, 3, 3}, 0, Layout::XZY, 1.0);
    Array3<double> b({3, 3, 3}, 0, Layout::ZXY, 1.0);
    EXPECT_EQ(max_abs_diff(a, b), 0.0);
    b(2, 1, 0) = 1.5;
    EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
}

TEST(Array3, FillSetsHaloToo) {
    Array3<float> a({3, 3, 3}, 2, Layout::XZY);
    a.fill(7.0f);
    EXPECT_EQ(a(-2, -2, -2), 7.0f);
    EXPECT_EQ(a(4, 4, 4), 7.0f);
}

TEST(Array3, RejectsBadShapes) {
    EXPECT_THROW(Array3<double>({0, 3, 3}, 1, Layout::XZY), Error);
    EXPECT_THROW(Array3<double>({3, 3, 3}, -1, Layout::XZY), Error);
}

}  // namespace
}  // namespace asuca
