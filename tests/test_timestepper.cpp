// Integration tests of the RK3 / HE-VI time stepper: self-convergence
// under dt refinement, substep robustness, layout equivalence, and
// precision behaviour (the paper's round-off agreement claims).
#include <gtest/gtest.h>

#include "src/core/diagnostics.hpp"
#include "src/core/scenarios.hpp"

namespace asuca {
namespace {

/// Integrate a warm bubble to t = 24 s with the given long step and
/// return rho*w at a probe point.
double bubble_probe(double dt, int n_short_per_dt2) {
    auto cfg = scenarios::warm_bubble_config<double>(16, 16, 16);
    cfg.stepper.dt = dt;
    cfg.stepper.n_short_steps =
        std::max(2, static_cast<int>(n_short_per_dt2 * dt / 2.0));
    cfg.stepper.diffusion = {};  // pure dynamics for the convergence test
    AsucaModel<double> model(cfg);
    scenarios::init_warm_bubble(model, 2.0);
    model.run(static_cast<int>(std::lround(24.0 / dt)));
    return model.state().rhow(8, 8, 6);
}

TEST(TimeStepper, SelfConvergesUnderDtRefinement) {
    // Richardson-style check: |f(2dt) - f(dt)| must shrink with dt.
    const double coarse = bubble_probe(4.0, 8);
    const double medium = bubble_probe(2.0, 8);
    const double fine = bubble_probe(1.0, 8);
    const double err_coarse = std::abs(coarse - medium);
    const double err_fine = std::abs(medium - fine);
    EXPECT_LT(err_fine, 0.75 * err_coarse);
    // And the probe signal itself is meaningful (bubble is rising).
    EXPECT_GT(fine, 1e-4);
}

TEST(TimeStepper, LayoutsAgreeToRoundOff) {
    // kij (CPU order) and xzy (GPU order) runs of identical numerics:
    // the paper validated its port the same way ("agree with those from
    // the CPU code within the margin of machine round-off error").
    auto cfg = scenarios::mountain_wave_config<double>(24, 8, 16);
    AsucaModel<double> a(cfg);
    cfg.grid.layout = Layout::ZXY;
    AsucaModel<double> b(cfg);
    scenarios::init_mountain_wave(a);
    scenarios::init_mountain_wave(b);
    a.run(3);
    b.run(3);
    // Same arithmetic per cell in both layouts -> bitwise equal.
    EXPECT_EQ(max_abs_diff(a.state().rhow, b.state().rhow), 0.0);
    EXPECT_EQ(max_abs_diff(a.state().rhotheta, b.state().rhotheta), 0.0);
}

TEST(TimeStepper, SinglePrecisionTracksDouble) {
    auto cfgd = scenarios::mountain_wave_config<double>(24, 8, 16);
    auto cfgf = scenarios::mountain_wave_config<float>(24, 8, 16);
    AsucaModel<double> d(cfgd);
    AsucaModel<float> f(cfgf);
    scenarios::init_mountain_wave(d);
    scenarios::init_mountain_wave(f);
    d.run(5);
    f.run(5);
    EXPECT_TRUE(f.is_finite());
    // Vertical velocity fields agree to single-precision accuracy
    // relative to the dynamic range of the pressure work (~1e5).
    double max_diff = 0.0;
    for (Index j = 0; j < 8; ++j)
        for (Index k = 0; k < 17; ++k)
            for (Index i = 0; i < 24; ++i)
                max_diff = std::max(
                    max_diff,
                    std::abs(static_cast<double>(f.state().rhow(i, j, k)) -
                             d.state().rhow(i, j, k)));
    EXPECT_LT(max_diff, 5e-2);
    EXPECT_GT(d.max_w(), 1e-4);  // the flow is actually doing something
}

class SubstepCounts : public ::testing::TestWithParam<int> {};

TEST_P(SubstepCounts, StableAndConsistent) {
    auto cfg = scenarios::mountain_wave_config<double>(24, 8, 16);
    cfg.stepper.n_short_steps = GetParam();
    AsucaModel<double> model(cfg);
    scenarios::init_mountain_wave(model);
    model.run(5);
    EXPECT_TRUE(model.is_finite());
    EXPECT_LT(model.max_w(), 50.0);  // no acoustic noise blow-up
}

INSTANTIATE_TEST_SUITE_P(ShortSteps, SubstepCounts,
                         ::testing::Values(6, 9, 12, 18));

TEST(TimeStepper, TracerClippingKeepsWaterNonNegative) {
    auto cfg = scenarios::mountain_wave_config<double>(24, 8, 16);
    AsucaModel<double> model(cfg);
    scenarios::init_mountain_wave(model);
    model.run(8);
    for (const auto& q : model.state().tracers) {
        for (Index j = 0; j < 8; ++j)
            for (Index k = 0; k < 16; ++k)
                for (Index i = 0; i < 24; ++i)
                    EXPECT_GE(q(i, j, k), 0.0);
    }
}

TEST(TimeStepper, RejectsBadConfig) {
    auto cfg = scenarios::mountain_wave_config<double>(16, 8, 8);
    cfg.stepper.dt = -1.0;
    EXPECT_THROW(AsucaModel<double> m(cfg), Error);
    cfg = scenarios::mountain_wave_config<double>(16, 8, 8);
    cfg.stepper.n_short_steps = 0;
    EXPECT_THROW(AsucaModel<double> m(cfg), Error);
}

}  // namespace
}  // namespace asuca
