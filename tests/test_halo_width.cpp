// Robustness: the dycore must produce identical interiors for any halo
// width >= the stencil requirement (a wider halo only adds unused cells).
#include <gtest/gtest.h>

#include "src/core/diagnostics.hpp"
#include "src/core/scenarios.hpp"

namespace asuca {
namespace {

TEST(HaloWidth, WiderHaloGivesBitwiseSameInterior) {
    auto cfg3 = scenarios::mountain_wave_config<double>(20, 10, 12);
    auto cfg5 = cfg3;
    cfg5.grid.halo = 5;

    AsucaModel<double> a(cfg3), b(cfg5);
    scenarios::init_mountain_wave(a);
    scenarios::init_mountain_wave(b);
    a.run(4);
    b.run(4);

    EXPECT_EQ(max_abs_diff(a.state().rhow, b.state().rhow), 0.0);
    EXPECT_EQ(max_abs_diff(a.state().rho, b.state().rho), 0.0);
    EXPECT_EQ(max_abs_diff(a.state().rhotheta, b.state().rhotheta), 0.0);
    EXPECT_EQ(max_abs_diff(a.state().tracer(Species::Rain),
                           b.state().tracer(Species::Rain)),
              0.0);
}

}  // namespace
}  // namespace asuca
