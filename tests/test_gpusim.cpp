// Tests for the GPU performance simulator: device catalog, launch
// configurations (paper Fig. 2/3), roofline model (paper Eq. 6), and the
// stream timeline.
#include <gtest/gtest.h>

#include "src/gpusim/device.hpp"
#include "src/gpusim/launch.hpp"
#include "src/gpusim/roofline.hpp"
#include "src/gpusim/timeline.hpp"

namespace asuca::gpusim {
namespace {

TEST(Device, CatalogMatchesPaperConstants) {
    const auto dev = DeviceSpec::tesla_s1070();
    // Paper Sec. III: 240 SPs at 1.44 GHz, 691.2 / 86.4 GFlops, 102 GB/s.
    EXPECT_EQ(dev.sm_count * dev.sp_per_sm, 240);
    EXPECT_DOUBLE_EQ(dev.fp32_gflops, 691.2);
    EXPECT_DOUBLE_EQ(dev.fp64_gflops, 86.4);
    EXPECT_NEAR(dev.mem_bandwidth_gbs, 102.4, 0.5);
    EXPECT_DOUBLE_EQ(dev.shared_mem_kb_per_sm, 16.0);
}

TEST(Launch, AdvectionConfigMatchesPaper) {
    // Paper Sec. IV-A-2: (nx/64, nz/4, 1) blocks of (64, 4, 1) threads,
    // shared tile of (64+3) x (4+3) elements.
    const auto lc = advection_launch({320, 256, 48}, sizeof(float));
    EXPECT_EQ(lc.block, (Int3{64, 4, 1}));
    EXPECT_EQ(lc.grid, (Int3{5, 12, 1}));
    EXPECT_EQ(lc.march, MarchAxis::Y);
    EXPECT_EQ(lc.shared_bytes, std::size_t{(64 + 3) * (4 + 3) * 4});
}

TEST(Launch, HelmholtzConfigMatchesPaper) {
    // Paper Sec. IV-A-3: (nx/64, ny/4, 1) blocks, marching along z.
    const auto lc = helmholtz_launch({320, 256, 48});
    EXPECT_EQ(lc.grid, (Int3{5, 64, 1}));
    EXPECT_EQ(lc.march, MarchAxis::Z);
}

TEST(Launch, SharedMemoryLimitsResidency) {
    const auto dev = DeviceSpec::tesla_s1070();
    // A 4-array double-precision tile: 4 * 67*7 * 8 B = 15 KB -> 1 block.
    const auto lc =
        advection_launch({320, 256, 48}, sizeof(double), 3, 4);
    EXPECT_EQ(resident_blocks_per_sm(dev, lc), 1);
    // A single float tile (1.8 KB) allows the cap of 8.
    const auto lc2 = advection_launch({320, 256, 48}, sizeof(float));
    EXPECT_EQ(resident_blocks_per_sm(dev, lc2), 8);
}

TEST(Launch, OccupancyGrowsWithGrid) {
    const auto dev = DeviceSpec::tesla_s1070();
    const auto small = advection_launch({64, 32, 8}, 4);
    const auto large = advection_launch({320, 256, 48}, 4);
    EXPECT_LT(occupancy(dev, small), occupancy(dev, large));
    EXPECT_LE(occupancy(dev, large), 1.0);
}

class RooflineTest : public ::testing::Test {
  protected:
    ExecutionOptions opts_{Precision::Single, Layout::XZY, true, true};
    RooflineModel model_{DeviceSpec::tesla_s1070(), opts_};
};

TEST_F(RooflineTest, MemoryBoundKernelLimitedByBandwidth) {
    // Paper kernel (1): 2 reads, 1 write, 1 FLOP per element.
    KernelTraits t{2, 1, 0, 0};
    const auto e = model_.estimate("coord", t, 1e7, 1.0);
    EXPECT_TRUE(e.memory_bound);
    // GFlops must sit well below peak and near AI * effective bandwidth.
    EXPECT_LT(e.gflops, 10.0);
    EXPECT_GT(e.gflops, 1.0);
}

TEST_F(RooflineTest, ComputeBoundKernelApproachesPeak) {
    // Warm-rain-like: heavy math, few arrays.
    KernelTraits t{3, 2, 0, 0};
    const auto e = model_.estimate("mp", t, 1e7, 2000.0);
    EXPECT_FALSE(e.memory_bound);
    EXPECT_GT(e.gflops, 0.5 * 691.2);
    EXPECT_LE(e.gflops, 691.2);
}

TEST_F(RooflineTest, AttainableCurveHasRidgePoint) {
    const double bw = model_.effective_bandwidth();
    EXPECT_NEAR(model_.attainable_gflops(0.1), 0.1 * bw, 1e-9);
    EXPECT_DOUBLE_EQ(model_.attainable_gflops(1e3), 691.2);
}

TEST_F(RooflineTest, UncoalescedLayoutIsSlower) {
    ExecutionOptions bad = opts_;
    bad.layout = Layout::ZXY;
    RooflineModel kij(DeviceSpec::tesla_s1070(), bad);
    KernelTraits t{4, 1, 4, 0};
    const double fast = model_.estimate("adv", t, 4e6, 30).seconds;
    const double slow = kij.estimate("adv", t, 4e6, 30).seconds;
    EXPECT_GT(slow, 4.0 * fast);
}

TEST_F(RooflineTest, SharedMemoryTilingReducesTraffic) {
    ExecutionOptions no_smem = opts_;
    no_smem.shared_memory_tiling = false;
    RooflineModel plain(DeviceSpec::tesla_s1070(), no_smem);
    KernelTraits t{4, 1, 9, 0};  // stencil kernel with 9 neighbor re-reads
    EXPECT_GT(plain.bytes_per_element(t), model_.bytes_per_element(t));
    EXPECT_GT(plain.estimate("adv", t, 4e6, 30).seconds,
              model_.estimate("adv", t, 4e6, 30).seconds);
}

TEST_F(RooflineTest, DoublePrecisionSlowerThanSingle) {
    ExecutionOptions dp = opts_;
    dp.precision = Precision::Double;
    RooflineModel dmodel(DeviceSpec::tesla_s1070(), dp);
    KernelTraits t{4, 1, 4, 0};
    const auto es = model_.estimate("k", t, 4e6, 30);
    const auto ed = dmodel.estimate("k", t, 4e6, 30);
    // Paper Sec. IV-B: DP lands between 12.5% (FPU-limited) and 50%
    // (bandwidth-limited) of SP.
    const double ratio = ed.gflops / es.gflops;
    EXPECT_GT(ratio, 0.125);
    EXPECT_LT(ratio, 0.75);
}

TEST(Timeline, SerialTasksAccumulate) {
    Timeline tl;
    auto r = tl.add_resource("gpu");
    auto a = tl.add_task("a", r, 1.0);
    auto b = tl.add_task("b", r, 2.0, {a});
    EXPECT_DOUBLE_EQ(tl.run(), 3.0);
    EXPECT_DOUBLE_EQ(tl.task(b).start, 1.0);
}

TEST(Timeline, IndependentResourcesOverlap) {
    Timeline tl;
    auto gpu = tl.add_resource("gpu");
    auto net = tl.add_resource("net");
    auto a = tl.add_task("kernel", gpu, 2.0);
    tl.add_task("comm", net, 1.5, {});  // concurrent with the kernel
    tl.add_task("kernel2", gpu, 1.0, {a});
    EXPECT_DOUBLE_EQ(tl.run(), 3.0);  // comm fully hidden
}

TEST(Timeline, DependencyAcrossResourcesSerializes) {
    Timeline tl;
    auto gpu = tl.add_resource("gpu");
    auto net = tl.add_resource("net");
    auto a = tl.add_task("boundary", gpu, 1.0);
    auto c = tl.add_task("comm", net, 2.0, {a});
    tl.add_task("unpack", gpu, 0.5, {c});
    EXPECT_DOUBLE_EQ(tl.run(), 3.5);
}

TEST(Timeline, FifoPerResourceMatchesIssueOrder) {
    Timeline tl;
    auto gpu = tl.add_resource("gpu");
    auto a = tl.add_task("a", gpu, 5.0);
    auto b = tl.add_task("b", gpu, 1.0);  // no dep, but queued after a
    tl.run();
    EXPECT_DOUBLE_EQ(tl.task(b).start, 5.0);
    EXPECT_DOUBLE_EQ(tl.task(a).start, 0.0);
}

TEST(Timeline, RejectsForwardDependencies) {
    Timeline tl;
    auto gpu = tl.add_resource("gpu");
    EXPECT_THROW(tl.add_task("x", gpu, 1.0, {5}), Error);
}

}  // namespace
}  // namespace asuca::gpusim
