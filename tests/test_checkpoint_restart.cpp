// Exact-restart guarantees of the v3 checkpoint format: running N steps,
// checkpointing, restarting and running M more steps must be bitwise
// identical to running N+M steps straight through — for a single-domain
// moist model (including the non-State side state v2 added: accumulated
// surface precipitation and the step counter) and for a decomposed
// MultiDomainRunner (per-rank padded sections, halos included).
//
// The CheckpointRestartNegative suite specifies the error paths: a
// truncated file, a corrupted section header, a bit-flipped payload (v3
// per-section checksums) and a wrong-version header must all be rejected
// with a clean asuca::Error AND leave the destination state bitwise
// untouched (load_checkpoint is transactional).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "src/cluster/multidomain.hpp"
#include "src/core/diagnostics.hpp"
#include "src/core/scenarios.hpp"
#include "src/io/checkpoint.hpp"

namespace asuca {
namespace {

namespace fs = std::filesystem;

void expect_bitwise(const State<double>& a, const State<double>& b) {
    EXPECT_EQ(max_abs_diff(a.rho, b.rho), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhou, b.rhou), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhov, b.rhov), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhow, b.rhow), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhotheta, b.rhotheta), 0.0);
    EXPECT_EQ(max_abs_diff(a.p, b.p), 0.0);
    ASSERT_EQ(a.tracers.size(), b.tracers.size());
    for (std::size_t n = 0; n < a.tracers.size(); ++n) {
        EXPECT_EQ(max_abs_diff(a.tracers[n], b.tracers[n]), 0.0);
    }
}

double max_abs_diff2(const Array2<double>& a, const Array2<double>& b) {
    EXPECT_EQ(a.nx(), b.nx());
    EXPECT_EQ(a.ny(), b.ny());
    double worst = 0.0;
    for (Index j = 0; j < a.ny(); ++j)
        for (Index i = 0; i < a.nx(); ++i)
            worst = std::max(worst, std::abs(a(i, j) - b(i, j)));
    return worst;
}

TEST(CheckpointRestart, SingleDomainMoistRoundTripIsBitwise) {
    const auto path = fs::temp_directory_path() / "asuca_restart_moist.bin";

    auto cfg = scenarios::real_case_config<double>(16, 16, 10);
    AsucaModel<double> a(cfg);
    scenarios::init_real_case(a);
    a.run(4);
    // Nonzero side state by construction: even if the microphysics has
    // not rained yet at step 4, the accumulator round-trip is exercised.
    a.microphysics().accumulated_precip()(2, 3) += 1.25;
    const double saved_precip = a.microphysics().accumulated_precip()(2, 3);
    io::save_model_checkpoint(path.string(), a);
    a.run(3);  // reference continues to step 7

    AsucaModel<double> b(cfg);  // fresh model, different history
    scenarios::init_real_case(b, /*v_max=*/5.0);
    b.run(1);
    io::load_model_checkpoint(path.string(), b);
    EXPECT_DOUBLE_EQ(b.time(), 16.0);  // 4 steps of dt = 4 s
    EXPECT_EQ(b.step_count(), 4);
    EXPECT_DOUBLE_EQ(b.microphysics().accumulated_precip()(2, 3),
                     saved_precip);
    b.run(3);

    expect_bitwise(a.state(), b.state());
    EXPECT_EQ(max_abs_diff2(a.microphysics().accumulated_precip(),
                            b.microphysics().accumulated_precip()),
              0.0);
    EXPECT_EQ(max_abs_diff2(a.microphysics().precip_rate(),
                            b.microphysics().precip_rate()),
              0.0);
    EXPECT_DOUBLE_EQ(a.time(), b.time());
    EXPECT_EQ(a.step_count(), b.step_count());
    fs::remove(path);
}

TEST(CheckpointRestart, RejectsVersion1File) {
    const auto path = fs::temp_directory_path() / "asuca_restart_v1.bin";
    {
        // A well-formed v1 header: correct magic, version = 1.
        std::ofstream out(path, std::ios::binary);
        const std::uint64_t magic = 0x4153554341434b50ull;
        const std::uint32_t version = 1, elem_size = 8, n_tracers = 0;
        const double time = 0.0;
        out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
        out.write(reinterpret_cast<const char*>(&version), sizeof(version));
        out.write(reinterpret_cast<const char*>(&elem_size),
                  sizeof(elem_size));
        out.write(reinterpret_cast<const char*>(&n_tracers),
                  sizeof(n_tracers));
        out.write(reinterpret_cast<const char*>(&time), sizeof(time));
    }
    GridSpec spec;
    spec.nx = 8;
    spec.ny = 8;
    spec.nz = 6;
    Grid<double> grid(spec);
    State<double> state(grid, SpeciesSet::dry());
    try {
        io::load_checkpoint(path.string(), state);
        FAIL() << "v1 checkpoint accepted";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
    fs::remove(path);
}

TEST(CheckpointRestart, RejectsMismatchedSideState) {
    const auto path = fs::temp_directory_path() / "asuca_restart_side.bin";
    GridSpec spec;
    spec.nx = 8;
    spec.ny = 8;
    spec.nz = 6;
    Grid<double> grid(spec);
    State<double> state(grid, SpeciesSet::dry());
    double written = 42.0;
    io::SideState side;
    side.add("model.steps", &written);
    io::save_checkpoint(path.string(), state, 0.0, side);

    // Same count, unknown name: must fail loudly, not part-restore.
    double other = 0.0;
    io::SideState wrong_name;
    wrong_name.add("kessler.precip_total", &other);
    EXPECT_THROW(io::load_checkpoint(path.string(), state, wrong_name),
                 Error);

    // Entry-count mismatch (a configuration with different physics on).
    EXPECT_THROW(io::load_checkpoint(path.string(), state), Error);

    // The matching side state round-trips.
    double restored = 0.0;
    io::SideState right;
    right.add("model.steps", &restored);
    io::load_checkpoint(path.string(), state, right);
    EXPECT_DOUBLE_EQ(restored, 42.0);
    fs::remove(path);
}

TEST(CheckpointRestart, Decomposed2x2RoundTripIsBitwise) {
    using cluster::MultiDomainConfig;
    using cluster::MultiDomainRunner;
    using cluster::OverlapMode;
    const auto path = fs::temp_directory_path() / "asuca_restart_2x2.bin";

    GridSpec spec;
    spec.nx = 24;
    spec.ny = 12;
    spec.nz = 10;
    spec.dx = 1000.0;
    spec.dy = 1000.0;
    spec.ztop = 10000.0;
    spec.terrain = bell_mountain(350.0, 3000.0, 12000.0, 6000.0);
    TimeStepperConfig cfg;
    cfg.dt = 4.0;
    cfg.n_short_steps = 6;
    cfg.diffusion.kh = 10.0;
    cfg.diffusion.kv = 1.0;
    cfg.sponge.z_start = 8000.0;
    const auto species = SpeciesSet::warm_rain();

    Grid<double> grid(spec);
    State<double> initial(grid, species);
    initialize_hydrostatic(grid, AtmosphereProfile::constant_n(292.0, 0.011),
                           8.0, 3.0, initial);
    set_relative_humidity(
        grid, [](double z) { return z < 2000.0 ? 0.8 : 0.3; }, initial);

    MultiDomainConfig md;
    md.overlap = OverlapMode::Split;
    MultiDomainRunner<double> a(spec, 2, 2, species, cfg, md);
    a.scatter(initial);
    for (int n = 0; n < 4; ++n) a.step();
    a.save_checkpoint(path.string());
    for (int n = 0; n < 3; ++n) a.step();  // reference: step 7
    State<double> ref(grid, species);
    a.gather(ref);

    // A mismatched decomposition must be rejected before any load.
    MultiDomainRunner<double> wrong(spec, 1, 2, species, cfg, md);
    EXPECT_THROW(wrong.load_checkpoint(path.string()), Error);

    MultiDomainRunner<double> b(spec, 2, 2, species, cfg, md);
    b.scatter(initial);  // different history: still at step 0
    b.load_checkpoint(path.string());
    EXPECT_EQ(b.step_index(), 4);
    for (int n = 0; n < 3; ++n) b.step();
    State<double> got(grid, species);
    b.gather(got);

    expect_bitwise(ref, got);
    fs::remove(path);
}

// ---------------------------------------------------------------------
// Negative paths: corrupt checkpoints must fail cleanly and atomically.
// ---------------------------------------------------------------------

// Deterministic distinct fill so "untouched" is checkable bitwise.
void fill_pattern(State<double>& s, double salt) {
    auto fill = [&](Array3<double>& a, double base) {
        double* p = a.data();
        for (std::size_t n = 0; n < a.size(); ++n) {
            p[n] = base + salt * 0.125 + static_cast<double>(n) * 1.0e-3;
        }
    };
    fill(s.rho, 1.0);
    fill(s.rhou, 2.0);
    fill(s.rhov, 3.0);
    fill(s.rhow, 4.0);
    fill(s.rhotheta, 5.0);
    fill(s.p, 6.0);
    fill(s.rho_ref, 7.0);
    fill(s.p_ref, 8.0);
    fill(s.rhotheta_ref, 9.0);
    fill(s.cs2, 10.0);
    for (std::size_t n = 0; n < s.tracers.size(); ++n) {
        fill(s.tracers[n], 11.0 + static_cast<double>(n));
    }
}

std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return std::move(buf).str();
}

void spit(const fs::path& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class CheckpointRestartNegative : public ::testing::Test {
  protected:
    void SetUp() override {
        // Unique per test: each TEST is its own ctest process, and two
        // of them racing on one shared temp file is a real -j flake.
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        path_ = fs::temp_directory_path() /
                (std::string("asuca_ckpt_negative_") + info->name() + ".bin");
        GridSpec spec;
        spec.nx = 8;
        spec.ny = 8;
        spec.nz = 6;
        grid_ = std::make_unique<Grid<double>>(spec);
        src_ = std::make_unique<State<double>>(*grid_, SpeciesSet::dry());
        fill_pattern(*src_, 1.0);
        double steps = 7.0;
        io::SideState side;
        side.add("model.steps", &steps);
        io::save_checkpoint(path_.string(), *src_, 3.5, side);
        bytes_ = slurp(path_);
        // v3 stream layout: 28-byte file header (magic, version,
        // elem_size, n_tracers, time; no species for dry), then per-array
        // sections of 32-byte shape meta + payload + 8-byte checksum.
        header_bytes_ = 28;
        payload_bytes_ = src_->rho.size() * sizeof(double);
        ASSERT_GT(bytes_.size(), header_bytes_ + 32 + payload_bytes_ + 8);
    }

    void TearDown() override { fs::remove(path_); }

    /// Load `bytes` (written to the temp path) into a freshly patterned
    /// destination; expect Error carrying `what`, and the destination
    /// state and side scalar bitwise untouched.
    void expect_rejected_without_mutation(const std::string& bytes,
                                          const std::string& what) {
        spit(path_, bytes);
        State<double> dst(*grid_, SpeciesSet::dry());
        fill_pattern(dst, 2.0);
        const State<double> before = dst;
        double steps = -1.0;
        io::SideState side;
        side.add("model.steps", &steps);
        try {
            io::load_checkpoint(path_.string(), dst, side);
            FAIL() << "corrupt checkpoint accepted (" << what << ")";
        } catch (const Error& e) {
            EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
                << "got: " << e.what();
        }
        expect_bitwise(before, dst);
        EXPECT_EQ(max_abs_diff(before.rho_ref, dst.rho_ref), 0.0);
        EXPECT_EQ(max_abs_diff(before.cs2, dst.cs2), 0.0);
        EXPECT_DOUBLE_EQ(steps, -1.0);  // side scalar not part-restored
    }

    fs::path path_;
    std::unique_ptr<Grid<double>> grid_;
    std::unique_ptr<State<double>> src_;
    std::string bytes_;
    std::size_t header_bytes_ = 0;
    std::size_t payload_bytes_ = 0;
};

TEST_F(CheckpointRestartNegative, IntactFileRoundTrips) {
    State<double> dst(*grid_, SpeciesSet::dry());
    fill_pattern(dst, 2.0);
    double steps = -1.0;
    io::SideState side;
    side.add("model.steps", &steps);
    const double time = io::load_checkpoint(path_.string(), dst, side);
    EXPECT_DOUBLE_EQ(time, 3.5);
    EXPECT_DOUBLE_EQ(steps, 7.0);
    expect_bitwise(*src_, dst);
}

TEST_F(CheckpointRestartNegative, TruncatedFileRejected) {
    // Cut mid-way through the first field array's payload.
    const std::string cut = bytes_.substr(
        0, header_bytes_ + 32 + payload_bytes_ / 2);
    expect_rejected_without_mutation(cut, "truncated");
}

TEST_F(CheckpointRestartNegative, TruncatedSideSectionRejected) {
    // Keep every field array, drop the tail of the side-state section:
    // the arrays parse, but nothing may be committed.
    const std::string cut = bytes_.substr(0, bytes_.size() - 6);
    expect_rejected_without_mutation(cut, "truncated");
}

TEST_F(CheckpointRestartNegative, CorruptedSectionLengthRejected) {
    // Damage the first array's shape meta (its extent header).
    std::string bad = bytes_;
    bad[header_bytes_] = static_cast<char>(bad[header_bytes_] ^ 0x3f);
    expect_rejected_without_mutation(bad, "does not match");
}

TEST_F(CheckpointRestartNegative, BitFlippedPayloadRejected) {
    // Flip ONE bit in the middle of the first array's payload: shape and
    // length still parse, only the v3 checksum can catch it.
    std::string bad = bytes_;
    const std::size_t at = header_bytes_ + 32 + payload_bytes_ / 2;
    bad[at] = static_cast<char>(bad[at] ^ 0x01);
    expect_rejected_without_mutation(bad, "checksum");
}

TEST_F(CheckpointRestartNegative, BitFlippedSidePayloadRejected) {
    // The side-state scalar payload sits 9 bytes before the final
    // checksum: [..., name, tag, value(8), checksum(8)] at file end.
    std::string bad = bytes_;
    const std::size_t at = bad.size() - 8 - 4;
    bad[at] = static_cast<char>(bad[at] ^ 0x01);
    expect_rejected_without_mutation(bad, "checksum");
}

TEST_F(CheckpointRestartNegative, WrongVersionHeaderRejected) {
    // Patch the version field (offset 8) to the superseded v2.
    std::string bad = bytes_;
    bad[8] = 2;
    expect_rejected_without_mutation(bad, "version");
}

TEST(CheckpointRestartNegativeMultiDomain, TruncatedFileLeavesRanksIntact) {
    using cluster::MultiDomainRunner;
    const auto path = fs::temp_directory_path() / "asuca_ckpt_neg_md.bin";

    GridSpec spec;
    spec.nx = 16;
    spec.ny = 8;
    spec.nz = 6;
    TimeStepperConfig cfg;
    cfg.dt = 4.0;
    cfg.n_short_steps = 4;
    const auto species = SpeciesSet::dry();
    Grid<double> grid(spec);

    State<double> initial(grid, species);
    initialize_hydrostatic(grid, AtmosphereProfile::isothermal(280.0), 5.0,
                           0.0, initial);

    MultiDomainRunner<double> a(spec, 2, 1, species, cfg);
    a.scatter(initial);
    a.step();
    a.save_checkpoint(path.string());

    // Truncate inside the second rank's section: rank 0 parses fully, so
    // only a transactional load can leave rank 0 untouched.
    const std::string bytes = slurp(path);
    spit(path, bytes.substr(0, bytes.size() * 3 / 4));

    MultiDomainRunner<double> b(spec, 2, 1, species, cfg);
    b.scatter(initial);  // different history: still at step 0
    State<double> before(grid, species);
    b.gather(before);
    EXPECT_THROW(b.load_checkpoint(path.string()), Error);
    EXPECT_EQ(b.step_index(), 0);
    State<double> after(grid, species);
    b.gather(after);
    expect_bitwise(before, after);

    // And b still works: the intact original restores and matches a.
    spit(path, bytes);
    b.load_checkpoint(path.string());
    EXPECT_EQ(b.step_index(), 1);
    State<double> got(grid, species);
    b.gather(got);
    State<double> ref(grid, species);
    a.gather(ref);
    expect_bitwise(ref, got);
    fs::remove(path);
}

}  // namespace
}  // namespace asuca
