// Exact-restart guarantees of the v2 checkpoint format: running N steps,
// checkpointing, restarting and running M more steps must be bitwise
// identical to running N+M steps straight through — for a single-domain
// moist model (including the non-State side state v2 adds: accumulated
// surface precipitation and the step counter) and for a decomposed
// MultiDomainRunner (per-rank padded sections, halos included).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "src/cluster/multidomain.hpp"
#include "src/core/diagnostics.hpp"
#include "src/core/scenarios.hpp"
#include "src/io/checkpoint.hpp"

namespace asuca {
namespace {

namespace fs = std::filesystem;

void expect_bitwise(const State<double>& a, const State<double>& b) {
    EXPECT_EQ(max_abs_diff(a.rho, b.rho), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhou, b.rhou), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhov, b.rhov), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhow, b.rhow), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhotheta, b.rhotheta), 0.0);
    EXPECT_EQ(max_abs_diff(a.p, b.p), 0.0);
    ASSERT_EQ(a.tracers.size(), b.tracers.size());
    for (std::size_t n = 0; n < a.tracers.size(); ++n) {
        EXPECT_EQ(max_abs_diff(a.tracers[n], b.tracers[n]), 0.0);
    }
}

double max_abs_diff2(const Array2<double>& a, const Array2<double>& b) {
    EXPECT_EQ(a.nx(), b.nx());
    EXPECT_EQ(a.ny(), b.ny());
    double worst = 0.0;
    for (Index j = 0; j < a.ny(); ++j)
        for (Index i = 0; i < a.nx(); ++i)
            worst = std::max(worst, std::abs(a(i, j) - b(i, j)));
    return worst;
}

TEST(CheckpointRestart, SingleDomainMoistRoundTripIsBitwise) {
    const auto path = fs::temp_directory_path() / "asuca_restart_moist.bin";

    auto cfg = scenarios::real_case_config<double>(16, 16, 10);
    AsucaModel<double> a(cfg);
    scenarios::init_real_case(a);
    a.run(4);
    // Nonzero side state by construction: even if the microphysics has
    // not rained yet at step 4, the accumulator round-trip is exercised.
    a.microphysics().accumulated_precip()(2, 3) += 1.25;
    const double saved_precip = a.microphysics().accumulated_precip()(2, 3);
    io::save_model_checkpoint(path.string(), a);
    a.run(3);  // reference continues to step 7

    AsucaModel<double> b(cfg);  // fresh model, different history
    scenarios::init_real_case(b, /*v_max=*/5.0);
    b.run(1);
    io::load_model_checkpoint(path.string(), b);
    EXPECT_DOUBLE_EQ(b.time(), 16.0);  // 4 steps of dt = 4 s
    EXPECT_EQ(b.step_count(), 4);
    EXPECT_DOUBLE_EQ(b.microphysics().accumulated_precip()(2, 3),
                     saved_precip);
    b.run(3);

    expect_bitwise(a.state(), b.state());
    EXPECT_EQ(max_abs_diff2(a.microphysics().accumulated_precip(),
                            b.microphysics().accumulated_precip()),
              0.0);
    EXPECT_EQ(max_abs_diff2(a.microphysics().precip_rate(),
                            b.microphysics().precip_rate()),
              0.0);
    EXPECT_DOUBLE_EQ(a.time(), b.time());
    EXPECT_EQ(a.step_count(), b.step_count());
    fs::remove(path);
}

TEST(CheckpointRestart, RejectsVersion1File) {
    const auto path = fs::temp_directory_path() / "asuca_restart_v1.bin";
    {
        // A well-formed v1 header: correct magic, version = 1.
        std::ofstream out(path, std::ios::binary);
        const std::uint64_t magic = 0x4153554341434b50ull;
        const std::uint32_t version = 1, elem_size = 8, n_tracers = 0;
        const double time = 0.0;
        out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
        out.write(reinterpret_cast<const char*>(&version), sizeof(version));
        out.write(reinterpret_cast<const char*>(&elem_size),
                  sizeof(elem_size));
        out.write(reinterpret_cast<const char*>(&n_tracers),
                  sizeof(n_tracers));
        out.write(reinterpret_cast<const char*>(&time), sizeof(time));
    }
    GridSpec spec;
    spec.nx = 8;
    spec.ny = 8;
    spec.nz = 6;
    Grid<double> grid(spec);
    State<double> state(grid, SpeciesSet::dry());
    try {
        io::load_checkpoint(path.string(), state);
        FAIL() << "v1 checkpoint accepted";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
    fs::remove(path);
}

TEST(CheckpointRestart, RejectsMismatchedSideState) {
    const auto path = fs::temp_directory_path() / "asuca_restart_side.bin";
    GridSpec spec;
    spec.nx = 8;
    spec.ny = 8;
    spec.nz = 6;
    Grid<double> grid(spec);
    State<double> state(grid, SpeciesSet::dry());
    double written = 42.0;
    io::SideState side;
    side.add("model.steps", &written);
    io::save_checkpoint(path.string(), state, 0.0, side);

    // Same count, unknown name: must fail loudly, not part-restore.
    double other = 0.0;
    io::SideState wrong_name;
    wrong_name.add("kessler.precip_total", &other);
    EXPECT_THROW(io::load_checkpoint(path.string(), state, wrong_name),
                 Error);

    // Entry-count mismatch (a configuration with different physics on).
    EXPECT_THROW(io::load_checkpoint(path.string(), state), Error);

    // The matching side state round-trips.
    double restored = 0.0;
    io::SideState right;
    right.add("model.steps", &restored);
    io::load_checkpoint(path.string(), state, right);
    EXPECT_DOUBLE_EQ(restored, 42.0);
    fs::remove(path);
}

TEST(CheckpointRestart, Decomposed2x2RoundTripIsBitwise) {
    using cluster::MultiDomainConfig;
    using cluster::MultiDomainRunner;
    using cluster::OverlapMode;
    const auto path = fs::temp_directory_path() / "asuca_restart_2x2.bin";

    GridSpec spec;
    spec.nx = 24;
    spec.ny = 12;
    spec.nz = 10;
    spec.dx = 1000.0;
    spec.dy = 1000.0;
    spec.ztop = 10000.0;
    spec.terrain = bell_mountain(350.0, 3000.0, 12000.0, 6000.0);
    TimeStepperConfig cfg;
    cfg.dt = 4.0;
    cfg.n_short_steps = 6;
    cfg.diffusion.kh = 10.0;
    cfg.diffusion.kv = 1.0;
    cfg.sponge.z_start = 8000.0;
    const auto species = SpeciesSet::warm_rain();

    Grid<double> grid(spec);
    State<double> initial(grid, species);
    initialize_hydrostatic(grid, AtmosphereProfile::constant_n(292.0, 0.011),
                           8.0, 3.0, initial);
    set_relative_humidity(
        grid, [](double z) { return z < 2000.0 ? 0.8 : 0.3; }, initial);

    MultiDomainConfig md;
    md.overlap = OverlapMode::Split;
    MultiDomainRunner<double> a(spec, 2, 2, species, cfg, md);
    a.scatter(initial);
    for (int n = 0; n < 4; ++n) a.step();
    a.save_checkpoint(path.string());
    for (int n = 0; n < 3; ++n) a.step();  // reference: step 7
    State<double> ref(grid, species);
    a.gather(ref);

    // A mismatched decomposition must be rejected before any load.
    MultiDomainRunner<double> wrong(spec, 1, 2, species, cfg, md);
    EXPECT_THROW(wrong.load_checkpoint(path.string()), Error);

    MultiDomainRunner<double> b(spec, 2, 2, species, cfg, md);
    b.scatter(initial);  // different history: still at step 0
    b.load_checkpoint(path.string());
    EXPECT_EQ(b.step_index(), 4);
    for (int n = 0; n < 3; ++n) b.step();
    State<double> got(grid, species);
    b.gather(got);

    expect_bitwise(ref, got);
    fs::remove(path);
}

}  // namespace
}  // namespace asuca
