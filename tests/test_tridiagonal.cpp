// Tests for the Thomas solver behind the 1-D Helmholtz-like equation.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "src/core/tridiagonal.hpp"

namespace asuca {
namespace {

/// Dense reference: Gaussian elimination with partial pivoting.
std::vector<double> dense_solve(std::vector<std::vector<double>> a,
                                std::vector<double> b) {
    const std::size_t n = b.size();
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t piv = col;
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::abs(a[r][col]) > std::abs(a[piv][col])) piv = r;
        }
        std::swap(a[col], a[piv]);
        std::swap(b[col], b[piv]);
        for (std::size_t r = col + 1; r < n; ++r) {
            const double f = a[r][col] / a[col][col];
            for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
            b[r] -= f * b[col];
        }
    }
    std::vector<double> x(n);
    for (std::size_t r = n; r-- > 0;) {
        double s = b[r];
        for (std::size_t c = r + 1; c < n; ++c) s -= a[r][c] * x[c];
        x[r] = s / a[r][r];
    }
    return x;
}

class TridiagonalSizes : public ::testing::TestWithParam<int> {};

TEST_P(TridiagonalSizes, MatchesDenseReference) {
    const auto n = static_cast<std::size_t>(GetParam());
    std::mt19937 rng(1234 + GetParam());
    std::uniform_real_distribution<double> dist(-1.0, 1.0);

    std::vector<double> lower(n), diag(n), upper(n), rhs(n), scratch(n);
    std::vector<std::vector<double>> dense(n, std::vector<double>(n, 0.0));
    std::vector<double> b(n);
    for (std::size_t k = 0; k < n; ++k) {
        lower[k] = dist(rng);
        upper[k] = dist(rng);
        // Diagonally dominant (the HE-VI operator always is).
        diag[k] = 3.0 + std::abs(dist(rng));
        rhs[k] = b[k] = dist(rng) * 5.0;
        dense[k][k] = diag[k];
        if (k > 0) dense[k][k - 1] = lower[k];
        if (k + 1 < n) dense[k][k + 1] = upper[k];
    }
    const auto expected = dense_solve(dense, b);
    solve_tridiagonal<double>(lower, diag, upper, rhs, scratch);
    for (std::size_t k = 0; k < n; ++k) {
        EXPECT_NEAR(rhs[k], expected[k], 1e-11) << "row " << k << " n=" << n;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TridiagonalSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 47, 48, 100));

TEST(Tridiagonal, SolvesIdentity) {
    std::vector<double> lower(4, 0.0), diag(4, 1.0), upper(4, 0.0);
    std::vector<double> rhs{1.0, -2.0, 3.0, 0.5}, scratch(4);
    solve_tridiagonal<double>(lower, diag, upper, rhs, scratch);
    EXPECT_DOUBLE_EQ(rhs[0], 1.0);
    EXPECT_DOUBLE_EQ(rhs[1], -2.0);
    EXPECT_DOUBLE_EQ(rhs[2], 3.0);
    EXPECT_DOUBLE_EQ(rhs[3], 0.5);
}

TEST(Tridiagonal, SecondDifferenceOperator) {
    // -x_{k-1} + 2 x_k - x_{k+1} = h^2 f with x=0 ends: discrete Poisson.
    const std::size_t n = 32;
    std::vector<double> lower(n, -1.0), diag(n, 2.0), upper(n, -1.0);
    std::vector<double> rhs(n), scratch(n);
    const double h = 1.0 / (n + 1);
    for (std::size_t k = 0; k < n; ++k) {
        rhs[k] = h * h * 1.0;  // f = 1
    }
    solve_tridiagonal<double>(lower, diag, upper, rhs, scratch);
    // Analytic solution of -u'' = 1, u(0)=u(1)=0: u = x(1-x)/2.
    for (std::size_t k = 0; k < n; ++k) {
        const double x = (k + 1) * h;
        EXPECT_NEAR(rhs[k], 0.5 * x * (1.0 - x), 1e-12);
    }
}

/// Generate `w` independent random diagonally-dominant systems of size
/// `n`, solve each with the scalar sweep, then solve all of them with one
/// batched sweep over an interleaved workspace of lane stride `stride`
/// (>= w: the remainder blocks of the acoustic gather loop run w < stride)
/// and require the per-lane results to match the scalar sweep EXACTLY —
/// each lane executes the identical operation sequence, so on the default
/// build (no implicit FMA contraction) the bound is 0 ULP.
void check_batched_matches_scalar(std::size_t n, std::size_t w,
                                  std::size_t stride, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);

    std::vector<double> lower(n * stride, 0.0), diag(n * stride, 0.0),
        upper(n * stride, 0.0), rhs(n * stride, 0.0),
        scratch(n * stride, 0.0), beta(stride, 0.0);
    std::vector<std::vector<double>> expected(w);
    for (std::size_t l = 0; l < w; ++l) {
        std::vector<double> lo(n), di(n), up(n), x(n), sc(n);
        for (std::size_t k = 0; k < n; ++k) {
            lo[k] = dist(rng);
            up[k] = dist(rng);
            di[k] = 3.0 + std::abs(dist(rng));
            x[k] = dist(rng) * 5.0;
            lower[k * stride + l] = lo[k];
            diag[k * stride + l] = di[k];
            upper[k * stride + l] = up[k];
            rhs[k * stride + l] = x[k];
        }
        solve_tridiagonal<double>(lo, di, up, x, sc);
        expected[l] = std::move(x);
    }

    solve_tridiagonal_batched<double>(lower.data(), diag.data(), upper.data(),
                                      rhs.data(), scratch.data(), beta.data(),
                                      n, w, stride);
    for (std::size_t l = 0; l < w; ++l) {
        for (std::size_t k = 0; k < n; ++k) {
            EXPECT_EQ(rhs[k * stride + l], expected[l][k])
                << "lane " << l << " level " << k << " (n=" << n
                << " w=" << w << " stride=" << stride << ")";
        }
    }
}

TEST(TridiagonalBatched, FullWidthFourMatchesScalarExactly) {
    check_batched_matches_scalar(48, 4, 4, 7);
}

TEST(TridiagonalBatched, FullWidthEightMatchesScalarExactly) {
    check_batched_matches_scalar(33, 8, 8, 11);
}

TEST(TridiagonalBatched, OddRemainderWidthMatchesScalarExactly) {
    // Partial blocks: w active lanes inside a wider stride, as produced
    // at the east edge of the acoustic gather loop.
    check_batched_matches_scalar(48, 3, 8, 13);
    check_batched_matches_scalar(16, 5, 8, 17);
    check_batched_matches_scalar(47, 7, 8, 19);
}

TEST(TridiagonalBatched, SingleLaneMatchesScalarExactly) {
    check_batched_matches_scalar(48, 1, 1, 23);
    check_batched_matches_scalar(48, 1, 8, 29);
}

TEST(TridiagonalBatched, SingleLevelSystems) {
    check_batched_matches_scalar(1, 4, 4, 31);
}

TEST(TridiagonalBatched, MatchesDenseReference) {
    // Independent accuracy check (not just scalar-equivalence): every
    // lane of a batched solve agrees with dense Gaussian elimination.
    const std::size_t n = 48, w = 8;
    std::mt19937 rng(101);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<double> lower(n * w), diag(n * w), upper(n * w), rhs(n * w),
        scratch(n * w), beta(w);
    std::vector<std::vector<std::vector<double>>> dense(
        w, std::vector<std::vector<double>>(n, std::vector<double>(n, 0.0)));
    std::vector<std::vector<double>> b(w, std::vector<double>(n));
    for (std::size_t l = 0; l < w; ++l) {
        for (std::size_t k = 0; k < n; ++k) {
            lower[k * w + l] = dist(rng);
            upper[k * w + l] = dist(rng);
            diag[k * w + l] = 3.0 + std::abs(dist(rng));
            rhs[k * w + l] = b[l][k] = dist(rng) * 5.0;
            dense[l][k][k] = diag[k * w + l];
            if (k > 0) dense[l][k][k - 1] = lower[k * w + l];
            if (k + 1 < n) dense[l][k][k + 1] = upper[k * w + l];
        }
    }
    solve_tridiagonal_batched<double>(lower.data(), diag.data(), upper.data(),
                                      rhs.data(), scratch.data(), beta.data(),
                                      n, w, w);
    for (std::size_t l = 0; l < w; ++l) {
        const auto expected = dense_solve(dense[l], b[l]);
        for (std::size_t k = 0; k < n; ++k) {
            EXPECT_NEAR(rhs[k * w + l], expected[k], 1e-11)
                << "lane " << l << " level " << k;
        }
    }
}

TEST(Tridiagonal, SinglePrecisionWorks) {
    std::vector<float> lower{0.f, 1.f, 1.f}, diag{4.f, 4.f, 4.f},
        upper{1.f, 1.f, 0.f}, rhs{5.f, 6.f, 5.f}, scratch(3);
    solve_tridiagonal<float>(lower, diag, upper, rhs, scratch);
    EXPECT_NEAR(rhs[0], 1.0f, 1e-6f);
    EXPECT_NEAR(rhs[1], 1.0f, 1e-6f);
    EXPECT_NEAR(rhs[2], 1.0f, 1e-6f);
}

}  // namespace
}  // namespace asuca
