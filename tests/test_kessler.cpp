// Tests for the Kessler warm-rain microphysics (paper kernel (5) and the
// precipitation component).
#include <gtest/gtest.h>

#include "src/core/diagnostics.hpp"
#include "src/core/initial.hpp"
#include "src/physics/kessler.hpp"

namespace asuca {
namespace {

struct MoistColumn {
    GridSpec spec;
    Grid<double> grid;
    State<double> state;

    MoistColumn() : spec(make_spec()), grid(spec),
                    state(grid, SpeciesSet::warm_rain()) {
        initialize_hydrostatic(grid,
                               AtmosphereProfile::constant_n(300.0, 0.008),
                               0.0, 0.0, state);
    }

    static GridSpec make_spec() {
        GridSpec s;
        s.nx = 4;
        s.ny = 4;
        s.nz = 20;
        s.dx = 1000.0;
        s.dy = 1000.0;
        s.ztop = 10000.0;
        return s;
    }

    double q(Species sp, Index k) const {
        return state.tracer(sp)(1, 1, k) / state.rho(1, 1, k);
    }
    double theta(Index k) const {
        return state.rhotheta(1, 1, k) / state.rho(1, 1, k);
    }
    /// Column water path: sum rho*q*dz over all species [kg/m^2].
    double water_path(Index i = 1, Index j = 1) const {
        double sum = 0.0;
        for (Index k = 0; k < spec.nz; ++k) {
            const double dz = grid.dz_center()(i, j, k);
            for (const auto& t : state.tracers) sum += t(i, j, k) * dz;
        }
        return sum;
    }
};

TEST(Kessler, SupersaturationCondensesAndWarms) {
    MoistColumn col;
    set_relative_humidity(col.grid, [](double z) {
        return z < 3000.0 ? 1.2 : 0.2;  // 120% RH: must condense
    }, col.state);
    const double qv0 = col.q(Species::Vapor, 1);
    const double th0 = col.theta(1);

    Kessler<double> mp(col.grid, KesslerConfig{});
    mp.apply(col.state, 5.0);

    EXPECT_LT(col.q(Species::Vapor, 1), qv0);       // vapor consumed
    EXPECT_GT(col.q(Species::Cloud, 1), 0.0);       // cloud created
    EXPECT_GT(col.theta(1), th0);                   // latent heating
    // Result is very close to saturation (iterated adjustment).
    // (checked indirectly: further application changes little)
    const double qc_after = col.q(Species::Cloud, 1);
    mp.apply(col.state, 5.0);
    EXPECT_NEAR(col.q(Species::Cloud, 1), qc_after, 0.05 * qc_after + 1e-6);
}

TEST(Kessler, SubsaturatedCloudEvaporatesAndCools) {
    MoistColumn col;
    set_relative_humidity(col.grid, [](double) { return 0.3; }, col.state);
    // Inject some cloud water by hand.
    auto& qc = col.state.tracer(Species::Cloud);
    for (Index k = 0; k < col.spec.nz; ++k)
        qc(1, 1, k) = 2e-4 * col.state.rho(1, 1, k);
    const double th0 = col.theta(5);
    const double qv0 = col.q(Species::Vapor, 5);

    KesslerConfig cfg;
    cfg.sedimentation = false;
    Kessler<double> mp(col.grid, cfg);
    mp.apply(col.state, 5.0);

    EXPECT_LT(col.q(Species::Cloud, 5), 2e-4);  // cloud evaporating
    EXPECT_GT(col.q(Species::Vapor, 5), qv0);
    EXPECT_LT(col.theta(5), th0);               // evaporative cooling
}

TEST(Kessler, SaturationAdjustmentConservesWater) {
    MoistColumn col;
    set_relative_humidity(col.grid, [](double z) {
        return z < 4000.0 ? 1.1 : 0.4;
    }, col.state);
    KesslerConfig cfg;
    cfg.sedimentation = false;  // only phase changes: water conserved
    const double before = col.water_path();
    Kessler<double> mp(col.grid, cfg);
    mp.apply(col.state, 10.0);
    EXPECT_NEAR(col.water_path(), before, 1e-10 * before);
}

TEST(Kessler, AutoconversionRequiresThreshold) {
    MoistColumn col;
    set_relative_humidity(col.grid, [](double) { return 0.0; }, col.state);
    auto& qc = col.state.tracer(Species::Cloud);
    KesslerConfig cfg;
    cfg.sedimentation = false;
    cfg.rain_evaporation = false;

    // Below the threshold: no rain forms. (Also no saturation adjustment
    // evaporation interference: dry air would evaporate cloud, so compare
    // rain only.)
    qc(1, 1, 5) = 0.5 * cfg.autoconversion_threshold * col.state.rho(1, 1, 5);
    Kessler<double> mp(col.grid, cfg);
    mp.apply(col.state, 1.0);
    EXPECT_DOUBLE_EQ(col.q(Species::Rain, 5), 0.0);

    // Far above the threshold: rain forms.
    qc(1, 1, 5) = 5.0 * cfg.autoconversion_threshold * col.state.rho(1, 1, 5);
    mp.apply(col.state, 1.0);
    EXPECT_GT(col.q(Species::Rain, 5), 0.0);
}

TEST(Kessler, SedimentationMovesRainDownAndConservesWater) {
    MoistColumn col;
    set_relative_humidity(col.grid, [](double) { return 0.0; }, col.state);
    auto& qr = col.state.tracer(Species::Rain);
    // Rain blob aloft.
    for (Index k = 10; k < 14; ++k)
        qr(1, 1, k) = 2e-3 * col.state.rho(1, 1, k);
    const double before = col.water_path();

    KesslerConfig cfg;
    cfg.rain_evaporation = false;
    Kessler<double> mp(col.grid, cfg);
    double fallen_before = 0.0;
    // ~6 m/s terminal velocity from 5-7 km: give it an hour of fall time.
    for (int step = 0; step < 180; ++step) {
        mp.apply(col.state, 20.0);
        const double fallen = mp.accumulated_precip()(1, 1);
        EXPECT_GE(fallen, fallen_before);  // precip only accumulates
        fallen_before = fallen;
    }
    // Water path + surface accumulation (mm == kg/m^2) is conserved.
    EXPECT_NEAR(col.water_path() + mp.accumulated_precip()(1, 1), before,
                1e-6 * before);
    // Rain actually reached the ground.
    EXPECT_GT(mp.accumulated_precip()(1, 1), 0.3 * before);
    // No negative rain anywhere.
    for (Index k = 0; k < col.spec.nz; ++k)
        EXPECT_GE(col.q(Species::Rain, k), 0.0);
}

TEST(Kessler, TerminalVelocityIncreasesWithRainContent) {
    // Indirect check through fall distance: a denser blob falls farther
    // in one substep-limited application.
    MoistColumn heavy, light;
    for (auto* col : {&heavy, &light}) {
        set_relative_humidity(col->grid, [](double) { return 0.0; },
                              col->state);
    }
    heavy.state.tracer(Species::Rain)(1, 1, 15) =
        5e-3 * heavy.state.rho(1, 1, 15);
    light.state.tracer(Species::Rain)(1, 1, 15) =
        1e-4 * light.state.rho(1, 1, 15);
    KesslerConfig cfg;
    cfg.rain_evaporation = false;
    Kessler<double> mph(heavy.grid, cfg), mpl(light.grid, cfg);
    mph.apply(heavy.state, 30.0);
    mpl.apply(light.state, 30.0);
    // Fraction moved out of the source cell is larger for the heavy blob.
    const double fh = heavy.state.tracer(Species::Rain)(1, 1, 15) /
                      (5e-3 * heavy.state.rho(1, 1, 15));
    const double fl = light.state.tracer(Species::Rain)(1, 1, 15) /
                      (1e-4 * light.state.rho(1, 1, 15));
    EXPECT_LT(fh, fl);
}

TEST(Kessler, RequiresWarmRainSpecies) {
    GridSpec spec = MoistColumn::make_spec();
    Grid<double> grid(spec);
    State<double> dry(grid, SpeciesSet::dry());
    Kessler<double> mp(grid, KesslerConfig{});
    EXPECT_THROW(mp.apply(dry, 1.0), Error);
}

}  // namespace
}  // namespace asuca
