// Resilience subsystem tests: deterministic fault injection, guarded
// halo channels (deadlines, integrity words, poisoning), watchdog health
// scans, and the multi-domain rollback-and-replay recovery policy.
//
// The two load-bearing guarantees, each pinned bitwise:
//   * with injection disabled, a guarded run equals an unguarded run;
//   * with a transient injected fault, the RECOVERED run equals a clean
//     run — rollback restores byte-identical rank states and the replay
//     recomputes the step deterministically.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <thread>

#include "src/cluster/multidomain.hpp"
#include "src/common/hash.hpp"
#include "src/parallel/thread_pool.hpp"
#include "src/core/diagnostics.hpp"
#include "src/core/initial.hpp"
#include "src/resilience/fault_injector.hpp"
#include "src/resilience/watchdog.hpp"

namespace asuca::cluster {
namespace {

using resilience::Fault;
using resilience::FaultKind;
using resilience::FaultPlan;

GridSpec make_global() {
    GridSpec s;
    s.nx = 24;
    s.ny = 12;
    s.nz = 10;
    s.dx = 1000.0;
    s.dy = 1000.0;
    s.ztop = 10000.0;
    s.terrain = bell_mountain(350.0, 3000.0, 12000.0, 6000.0);
    return s;
}

TimeStepperConfig make_stepper_cfg() {
    TimeStepperConfig cfg;
    cfg.dt = 4.0;
    cfg.n_short_steps = 6;
    cfg.diffusion.kh = 10.0;
    cfg.diffusion.kv = 1.0;
    cfg.sponge.z_start = 8000.0;
    return cfg;
}

void init_case(const Grid<double>& grid, const SpeciesSet& species,
               State<double>& state) {
    initialize_hydrostatic(grid, AtmosphereProfile::constant_n(292.0, 0.011),
                           8.0, 3.0, state);
    if (species.contains(Species::Vapor)) {
        set_relative_humidity(
            grid, [](double z) { return z < 2000.0 ? 0.8 : 0.3; }, state);
    }
}

void expect_bitwise(const State<double>& a, const State<double>& b) {
    EXPECT_EQ(max_abs_diff(a.rho, b.rho), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhou, b.rhou), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhov, b.rhov), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhow, b.rhow), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhotheta, b.rhotheta), 0.0);
    EXPECT_EQ(max_abs_diff(a.p, b.p), 0.0);
    ASSERT_EQ(a.tracers.size(), b.tracers.size());
    for (std::size_t n = 0; n < a.tracers.size(); ++n) {
        EXPECT_EQ(max_abs_diff(a.tracers[n], b.tracers[n]), 0.0);
    }
}

// ---------------------------------------------------------------------
// Fault injector.
// ---------------------------------------------------------------------

TEST(FaultInjector, SeededPlanIsReproducible) {
    const auto a = resilience::random_plan(42, 8, FaultKind::FieldNaN, 4, 10,
                                           12, 6, 10);
    const auto b = resilience::random_plan(42, 8, FaultKind::FieldNaN, 4, 10,
                                           12, 6, 10);
    ASSERT_EQ(a.size(), b.size());
    const auto c = resilience::random_plan(43, 8, FaultKind::FieldNaN, 4, 10,
                                           12, 6, 10);
    bool same_as_other_seed = true;
    for (std::size_t n = 0; n < a.size(); ++n) {
        EXPECT_EQ(a[n].rank, b[n].rank);
        EXPECT_EQ(a[n].step, b[n].step);
        EXPECT_EQ(a[n].i, b[n].i);
        EXPECT_EQ(a[n].j, b[n].j);
        EXPECT_EQ(a[n].k, b[n].k);
        same_as_other_seed = same_as_other_seed && a[n].rank == c[n].rank &&
                             a[n].step == c[n].step && a[n].i == c[n].i &&
                             a[n].j == c[n].j && a[n].k == c[n].k;
    }
    EXPECT_FALSE(same_as_other_seed);
}

// Property: the plan a seed derives is a pure function of its arguments —
// identical across repeated calls, across the installed thread-pool
// width, and across which thread generates it. The forecast server leans
// on this: an injection schedule in a request spec must reproduce no
// matter which worker (with which private pool) executes the request.
TEST(FaultInjector, SeededPlanIsIdenticalAcrossThreadCounts) {
    const auto plan_equal = [](const FaultPlan& a, const FaultPlan& b) {
        if (a.size() != b.size()) return false;
        for (std::size_t n = 0; n < a.size(); ++n) {
            if (a[n].kind != b[n].kind || a[n].rank != b[n].rank ||
                a[n].step != b[n].step || a[n].var != b[n].var ||
                a[n].i != b[n].i || a[n].j != b[n].j || a[n].k != b[n].k ||
                a[n].delay != b[n].delay) {
                return false;
            }
        }
        return true;
    };
    const auto make = [] {
        return resilience::random_plan(1234, 16, FaultKind::HaloCorrupt, 6,
                                       20, 24, 12, 10,
                                       std::chrono::milliseconds(3));
    };
    const FaultPlan reference = make();
    ASSERT_EQ(reference.size(), 16u);

    // Same process, different installed pool widths.
    for (std::size_t width : {1u, 2u, 5u}) {
        ThreadPool pool(width);
        ThreadPool::ScopedOverride guard(pool);
        EXPECT_TRUE(plan_equal(reference, make()))
            << "plan differs under a " << width << "-thread pool";
    }

    // Generated concurrently from many threads at once.
    std::vector<FaultPlan> got(8);
    {
        std::vector<std::thread> threads;
        threads.reserve(got.size());
        for (std::size_t t = 0; t < got.size(); ++t) {
            threads.emplace_back([&, t] { got[t] = make(); });
        }
        for (auto& th : threads) th.join();
    }
    for (std::size_t t = 0; t < got.size(); ++t) {
        EXPECT_TRUE(plan_equal(reference, got[t]))
            << "plan differs on generator thread " << t;
    }
}

TEST(FaultInjector, EachFaultFiresExactlyOnce) {
    FaultPlan plan;
    plan.push_back({FaultKind::RankStall, 1, 3, VarId::RhoTheta, 0, 0, 0,
                    std::chrono::milliseconds(7)});
    plan.push_back({FaultKind::RankKill, 0, 2, VarId::RhoTheta, 0, 0, 0, {}});
    plan.push_back(
        {FaultKind::HaloCorrupt, 2, 5, VarId::RhoTheta, 0, 0, 0, {}});
    resilience::FaultInjector inj(plan);
    EXPECT_TRUE(inj.enabled());
    EXPECT_EQ(inj.fired_count(), 0);

    EXPECT_EQ(inj.stall(1, 2).count(), 0);   // wrong step
    EXPECT_EQ(inj.stall(0, 3).count(), 0);   // wrong rank
    EXPECT_EQ(inj.stall(1, 3), std::chrono::milliseconds(7));
    EXPECT_EQ(inj.stall(1, 3).count(), 0);   // consumed

    EXPECT_FALSE(inj.kill(0, 0));
    EXPECT_TRUE(inj.kill(0, 2));
    EXPECT_FALSE(inj.kill(0, 2));

    EXPECT_TRUE(inj.arm_halo_corrupt(2, 5));
    EXPECT_FALSE(inj.arm_halo_corrupt(2, 5));
    EXPECT_EQ(inj.fired_count(), 3);
}

TEST(FaultInjector, FieldFaultsCorruptTheNamedCell) {
    GridSpec spec = make_global();
    Grid<double> grid(spec);
    State<double> state(grid, SpeciesSet::dry());
    state.rhotheta.fill(300.0);
    FaultPlan plan;
    plan.push_back({FaultKind::FieldNaN, 0, 1, VarId::RhoTheta, 3, 4, 2, {}});
    plan.push_back({FaultKind::FieldInf, 0, 1, VarId::Rho, 1, 1, 1, {}});
    resilience::FaultInjector inj(plan);
    std::string log;
    EXPECT_EQ(inj.apply_field_faults(
                  0, 1, [&](Index) -> State<double>& { return state; }, &log),
              0);
    EXPECT_EQ(inj.apply_field_faults(
                  1, 1, [&](Index) -> State<double>& { return state; }, &log),
              2);
    EXPECT_TRUE(std::isnan(state.rhotheta(3, 4, 2)));
    EXPECT_TRUE(std::isinf(state.rho(1, 1, 1)));
    EXPECT_NE(log.find("field_nan"), std::string::npos);
    EXPECT_NE(log.find("rho_theta"), std::string::npos);
    // Replay: already fired, nothing happens.
    EXPECT_EQ(inj.apply_field_faults(
                  1, 1, [&](Index) -> State<double>& { return state; }),
              0);
}

// ---------------------------------------------------------------------
// Guarded channels (unit level).
// ---------------------------------------------------------------------

TEST(ResilienceChannel, IntegrityPassesCleanMessages) {
    HaloChannel<double> ch;
    ch.enable_guard(ChannelGuard{std::chrono::seconds(2), true}, 0, 1, 0);
    for (int msg = 0; msg < 5; ++msg) {
        auto& buf = ch.begin_post(64);
        for (std::size_t n = 0; n < buf.size(); ++n) {
            buf[n] = static_cast<double>(msg * 100 + static_cast<int>(n));
        }
        ch.finish_post();
        const auto& got = ch.begin_receive();
        EXPECT_EQ(got[7], static_cast<double>(msg * 100 + 7));
        ch.finish_receive();
    }
}

TEST(ResilienceChannel, CorruptedMessageIsDetected) {
    HaloChannel<double> ch;
    ch.enable_guard(ChannelGuard{std::chrono::seconds(2), true}, 3, 1, 2);
    auto& buf = ch.begin_post(64);
    for (std::size_t n = 0; n < buf.size(); ++n) buf[n] = 1.0;
    ch.finish_post(/*corrupt_in_flight=*/true);
    try {
        ch.begin_receive();
        FAIL() << "corruption not detected";
    } catch (const HaloFaultError& e) {
        EXPECT_EQ(e.fault, HaloFault::Corrupt);
        EXPECT_EQ(e.owner_rank, 3);
        EXPECT_EQ(e.suspect_rank, 1);  // the producer is the suspect
        EXPECT_NE(std::string(e.what()).find("corrupt"), std::string::npos);
    }
}

TEST(ResilienceChannel, ReceiveDeadlineTimesOutWithPeerSuspect) {
    HaloChannel<double> ch;
    ch.enable_guard(ChannelGuard{std::chrono::milliseconds(60), true}, 2, 7,
                    1);
    const auto t0 = std::chrono::steady_clock::now();
    try {
        ch.begin_receive();
        FAIL() << "deadline did not fire";
    } catch (const HaloFaultError& e) {
        EXPECT_EQ(e.fault, HaloFault::Timeout);
        EXPECT_EQ(e.suspect_rank, 7);
    }
    const auto waited = std::chrono::steady_clock::now() - t0;
    EXPECT_GE(waited, std::chrono::milliseconds(55));
}

TEST(ResilienceChannel, PoisonReleasesABlockedWaiter) {
    HaloChannel<double> ch;
    ch.enable_guard(ChannelGuard{std::chrono::seconds(30), true}, 0, 1, 0);
    HaloFault seen = HaloFault::None;
    std::thread waiter([&] {
        try {
            ch.begin_receive();
        } catch (const HaloFaultError& e) {
            seen = e.fault;
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ch.poison();
    waiter.join();  // returns long before the 30 s deadline
    EXPECT_EQ(seen, HaloFault::Poisoned);
}

// ---------------------------------------------------------------------
// Watchdog (unit level).
// ---------------------------------------------------------------------

TEST(WatchdogReport, FlagsNonFiniteWithFieldAndLocation) {
    GridSpec spec = make_global();
    Grid<double> grid(spec);
    State<double> state(grid, SpeciesSet::dry());
    state.rho.fill(1.0);
    state.rhotheta.fill(300.0);
    state.p.fill(1.0e5);
    resilience::Watchdog<double> dog;
    resilience::HealthReport report;
    EXPECT_EQ(dog.scan(grid, state, 4.0, 1, 9, report), 0);
    EXPECT_TRUE(report.healthy());

    state.rhotheta(5, 2, 3) = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(dog.scan(grid, state, 4.0, 1, 9, report), 1);
    ASSERT_FALSE(report.healthy());
    const auto* f = report.first("nonfinite");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->rank, 1);
    EXPECT_EQ(f->step, 9);
    EXPECT_EQ(f->field, "rho_theta");
    EXPECT_EQ(f->i, 5);
    EXPECT_EQ(f->j, 2);
    EXPECT_EQ(f->k, 3);
    EXPECT_NE(report.to_string().find("rho_theta"), std::string::npos);
}

TEST(WatchdogReport, FlagsCflExcursionAndMassDrift) {
    GridSpec spec = make_global();
    Grid<double> grid(spec);
    State<double> state(grid, SpeciesSet::dry());
    state.rho.fill(1.0);
    resilience::WatchdogConfig cfg;
    cfg.cfl_limit = 2.0;
    cfg.mass_drift_tol = 1.0e-6;
    resilience::Watchdog<double> dog(cfg);
    resilience::HealthReport report;
    EXPECT_EQ(dog.scan(grid, state, 4.0, 0, 0, report), 0);

    // A finite but absurd momentum: exactly what a high-exponent bit flip
    // produces and what is_finite() alone cannot see.
    state.rhou(6, 3, 2) = 1.0e6;
    dog.scan(grid, state, 4.0, 0, 0, report);
    ASSERT_TRUE(report.has("cfl"));
    EXPECT_GT(report.first("cfl")->value, 2.0);

    resilience::HealthReport mass_report;
    const double mass = resilience::Watchdog<double>::total_mass(grid, state);
    EXPECT_EQ(dog.check_mass(mass, mass, 0, 0, mass_report), 0);
    EXPECT_EQ(dog.check_mass(mass * 1.001, mass, 0, 0, mass_report), 1);
    EXPECT_TRUE(mass_report.has("mass_drift"));
}

// ---------------------------------------------------------------------
// Runner-level recovery.
// ---------------------------------------------------------------------

MultiDomainConfig resilient_config(OverlapMode mode, FaultPlan faults = {}) {
    MultiDomainConfig md;
    md.overlap = mode;
    md.threads_per_rank = 1;
    md.resilience.enabled = true;
    md.resilience.checkpoint_interval = 1;
    md.resilience.max_retries = 3;
    md.resilience.halo_deadline = std::chrono::seconds(20);
    md.resilience.faults = std::move(faults);
    return md;
}

TEST(ResilienceRecovery, GuardedRunIsBitwiseIdenticalToUnguarded) {
    const auto spec = make_global();
    const auto cfg = make_stepper_cfg();
    const auto species = SpeciesSet::warm_rain();
    Grid<double> grid(spec);
    State<double> initial(grid, species);
    init_case(grid, species, initial);

    for (OverlapMode mode :
         {OverlapMode::Split, OverlapMode::SplitPipeline}) {
        MultiDomainConfig plain;
        plain.overlap = mode;
        MultiDomainRunner<double> unguarded(spec, 2, 2, species, cfg, plain);
        unguarded.scatter(initial);
        for (int n = 0; n < 4; ++n) unguarded.step();
        State<double> ref(grid, species);
        unguarded.gather(ref);

        // Deadlines, integrity words, watchdog scans, per-step snapshots:
        // none of it may change a single bit of the answer.
        auto md = resilient_config(mode);
        md.resilience.watchdog.cfl_limit = 10.0;
        md.resilience.watchdog.mass_drift_tol = 1.0e-6;
        MultiDomainRunner<double> guarded(spec, 2, 2, species, cfg, md);
        guarded.scatter(initial);
        guarded.advance(4);
        State<double> got(grid, species);
        guarded.gather(got);
        expect_bitwise(ref, got);
        EXPECT_EQ(guarded.step_index(), 4);
        EXPECT_TRUE(guarded.last_health_report().healthy());
        EXPECT_EQ(guarded.recovery_log(), "");
    }
}

TEST(ResilienceRecovery, InjectedFieldNaNRollsBackAndReplaysBitwise) {
    const auto spec = make_global();
    const auto cfg = make_stepper_cfg();
    const auto species = SpeciesSet::warm_rain();
    Grid<double> grid(spec);
    State<double> initial(grid, species);
    init_case(grid, species, initial);

    MultiDomainRunner<double> clean(spec, 2, 2, species, cfg,
                                    resilient_config(OverlapMode::Split));
    clean.scatter(initial);
    clean.advance(5);
    State<double> ref(grid, species);
    clean.gather(ref);

    FaultPlan plan;
    plan.push_back({FaultKind::FieldNaN, 2, 2, VarId::RhoTheta, 4, 2, 3, {}});
    MultiDomainRunner<double> faulty(
        spec, 2, 2, species, cfg,
        resilient_config(OverlapMode::Split, plan));
    faulty.scatter(initial);
    faulty.advance(5);
    State<double> got(grid, species);
    faulty.gather(got);

    expect_bitwise(ref, got);
    EXPECT_EQ(faulty.injector().fired_count(), 1);
    EXPECT_NE(faulty.recovery_log().find("rollback to step 2"),
              std::string::npos);
    EXPECT_NE(faulty.recovery_log().find("nonfinite"), std::string::npos);
}

TEST(ResilienceRecovery, HaloCorruptionRollsBackAndReplaysBitwise) {
    const auto spec = make_global();
    const auto cfg = make_stepper_cfg();
    const auto species = SpeciesSet::warm_rain();
    Grid<double> grid(spec);
    State<double> initial(grid, species);
    init_case(grid, species, initial);

    MultiDomainRunner<double> clean(
        spec, 2, 2, species, cfg,
        resilient_config(OverlapMode::SplitPipeline));
    clean.scatter(initial);
    clean.advance(4);
    State<double> ref(grid, species);
    clean.gather(ref);

    FaultPlan plan;
    plan.push_back(
        {FaultKind::HaloCorrupt, 1, 1, VarId::RhoTheta, 0, 0, 0, {}});
    MultiDomainRunner<double> faulty(
        spec, 2, 2, species, cfg,
        resilient_config(OverlapMode::SplitPipeline, plan));
    faulty.scatter(initial);
    faulty.advance(4);
    State<double> got(grid, species);
    faulty.gather(got);

    expect_bitwise(ref, got);
    EXPECT_EQ(faulty.injector().fired_count(), 1);
    EXPECT_NE(faulty.recovery_log().find("transient halo corruption"),
              std::string::npos);
}

TEST(ResilienceRecovery, LockstepFieldFaultRecoversBitwise) {
    // The recovery policy is executor-agnostic: the serial lockstep
    // runner rolls back and replays exactly like the concurrent one.
    const auto spec = make_global();
    const auto cfg = make_stepper_cfg();
    const auto species = SpeciesSet::dry();
    Grid<double> grid(spec);
    State<double> initial(grid, species);
    init_case(grid, species, initial);

    MultiDomainRunner<double> clean(spec, 2, 2, species, cfg,
                                    resilient_config(OverlapMode::None));
    clean.scatter(initial);
    clean.advance(3);
    State<double> ref(grid, species);
    clean.gather(ref);

    FaultPlan plan;
    plan.push_back({FaultKind::FieldInf, 3, 1, VarId::Rho, 2, 2, 2, {}});
    MultiDomainRunner<double> faulty(
        spec, 2, 2, species, cfg, resilient_config(OverlapMode::None, plan));
    faulty.scatter(initial);
    faulty.advance(3);
    State<double> got(grid, species);
    faulty.gather(got);
    expect_bitwise(ref, got);
    EXPECT_NE(faulty.recovery_log().find("rollback"), std::string::npos);
}

TEST(ResilienceRecovery, StallPastDeadlineFailsCleanlyWithRankAttribution) {
    // 2x1: the only cross-rank channels run between ranks 0 and 1, so a
    // timeout's suspect is unambiguous. Rank 1 sleeps well past the
    // deadline; rank 0 must NOT hang — its guarded wait expires, every
    // channel is poisoned, and advance() aborts naming rank 1.
    const auto spec = make_global();
    const auto cfg = make_stepper_cfg();
    const auto species = SpeciesSet::dry();
    Grid<double> grid(spec);
    State<double> initial(grid, species);
    init_case(grid, species, initial);

    FaultPlan plan;
    plan.push_back({FaultKind::RankStall, 1, 0, VarId::RhoTheta, 0, 0, 0,
                    std::chrono::milliseconds(1500)});
    auto md = resilient_config(OverlapMode::Split, plan);
    md.resilience.halo_deadline = std::chrono::milliseconds(300);
    MultiDomainRunner<double> runner(spec, 2, 1, species, cfg, md);
    runner.scatter(initial);
    try {
        runner.advance(1);
        FAIL() << "stalled rank not detected";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("halo deadline missed"), std::string::npos);
        EXPECT_NE(what.find("suspect rank(s) 1"), std::string::npos);
    }
}

TEST(ResilienceRecovery, InjectedKillTerminatesAllRanksCleanly) {
    const auto spec = make_global();
    const auto cfg = make_stepper_cfg();
    const auto species = SpeciesSet::dry();
    Grid<double> grid(spec);
    State<double> initial(grid, species);
    init_case(grid, species, initial);

    FaultPlan plan;
    plan.push_back({FaultKind::RankKill, 0, 0, VarId::RhoTheta, 0, 0, 0, {}});
    MultiDomainRunner<double> runner(
        spec, 2, 1, species, cfg,
        resilient_config(OverlapMode::Split, plan));
    runner.scatter(initial);
    try {
        runner.advance(1);
        FAIL() << "killed rank not detected";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("rank(s) 0 died"), std::string::npos);
    }
}

TEST(ResilienceRecovery, PersistentFaultExhaustsRetries) {
    // A CFL limit below the flow's actual Courant number trips the
    // watchdog on every deterministic replay — a persistent fault.
    // The bounded-retry policy must declare it fatal instead of
    // rolling back forever.
    const auto spec = make_global();
    const auto cfg = make_stepper_cfg();
    const auto species = SpeciesSet::dry();
    Grid<double> grid(spec);
    State<double> initial(grid, species);
    init_case(grid, species, initial);

    auto md = resilient_config(OverlapMode::None);
    md.resilience.max_retries = 1;
    md.resilience.watchdog.cfl_limit = 1.0e-12;  // u0 = 8 m/s trips this
    MultiDomainRunner<double> runner(spec, 1, 1, species, cfg, md);
    runner.scatter(initial);
    try {
        runner.advance(1);
        FAIL() << "persistent watchdog fault not declared fatal";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("persists"), std::string::npos);
    }
    EXPECT_NE(runner.recovery_log().find("rollback"), std::string::npos);
    EXPECT_FALSE(runner.last_health_report().healthy());
}

TEST(ResilienceRecovery, FaultPlanWithoutResilienceIsRejected) {
    const auto spec = make_global();
    const auto cfg = make_stepper_cfg();
    MultiDomainConfig md;
    md.resilience.faults.push_back(
        {FaultKind::FieldNaN, 0, 0, VarId::Rho, 0, 0, 0, {}});
    EXPECT_THROW(MultiDomainRunner<double>(spec, 2, 2, SpeciesSet::dry(),
                                           cfg, md),
                 Error);
    // Rank/halo faults are meaningless without channels or rank workers.
    MultiDomainConfig lockstep;
    lockstep.resilience.enabled = true;
    lockstep.resilience.faults.push_back(
        {FaultKind::RankStall, 0, 0, VarId::Rho, 0, 0, 0, {}});
    EXPECT_THROW(MultiDomainRunner<double>(spec, 2, 2, SpeciesSet::dry(),
                                           cfg, lockstep),
                 Error);
}

// ---------------------------------------------------------------------
// Fused halo integrity (unit level).
// ---------------------------------------------------------------------

// The fused pack path accumulates the element-wise FNV-1a word inside
// the copy loop; the receiver's recompute path (begin_receive) must
// accept it. Odd sizes exercise every tail case.
TEST(ResilienceChannel, FusedPostHashMatchesStandaloneChecksum) {
    HaloChannel<double> ch;
    ch.enable_guard(ChannelGuard{std::chrono::seconds(2), true}, 0, 1, 0);
    ASSERT_TRUE(ch.integrity_on());
    int msg = 0;
    for (std::size_t size : {std::size_t(1), std::size_t(3), std::size_t(7),
                             std::size_t(13), std::size_t(64),
                             std::size_t(129)}) {
        auto& buf = ch.begin_post(size);
        hash::Fnv4 h;
        for (std::size_t n = 0; n < buf.size(); ++n) {
            buf[n] = 0.25 * static_cast<double>(msg * 1000 + int(n)) - 3.0;
            h.add(buf[n]);
        }
        // The streaming 4-lane accumulator must equal the block
        // function the receiver's recompute path uses — including the
        // tail lanes at odd sizes.
        EXPECT_EQ(h.digest(), hash::fnv1a_elems4(buf.data(), buf.size()));
        ch.finish_post_hashed(h.digest());
        const auto& got = ch.begin_receive();  // recompute-verify path
        ASSERT_EQ(got.size(), size);
        EXPECT_EQ(got[size - 1],
                  0.25 * static_cast<double>(msg * 1000 + int(size) - 1) -
                      3.0);
        ch.finish_receive();
        ++msg;
    }
}

TEST(ResilienceChannel, FusedPostHashMatchesStandaloneChecksumFloat) {
    HaloChannel<float> ch;
    ch.enable_guard(ChannelGuard{std::chrono::seconds(2), true}, 0, 1, 1);
    auto& buf = ch.begin_post(37);
    hash::Fnv4 h;
    for (std::size_t n = 0; n < buf.size(); ++n) {
        buf[n] = 1.5f * static_cast<float>(n) - 7.0f;
        h.add(buf[n]);
    }
    EXPECT_EQ(h.digest(), hash::fnv1a_elems4(buf.data(), buf.size()));
    ch.finish_post_hashed(h.digest());
    EXPECT_EQ(ch.begin_receive()[36], 1.5f * 36.0f - 7.0f);
    ch.finish_receive();
}

// The fused unpack path: begin_receive_deferred() + hash-while-copying
// + verify_receive() must detect in-flight corruption exactly like the
// recompute path does.
TEST(ResilienceChannel, DeferredVerifyDetectsCorruption) {
    HaloChannel<double> ch;
    ch.enable_guard(ChannelGuard{std::chrono::seconds(2), true}, 4, 9, 3);
    {
        auto& buf = ch.begin_post(32);
        hash::Fnv4 h;
        for (std::size_t n = 0; n < buf.size(); ++n) {
            buf[n] = static_cast<double>(n);
            h.add(buf[n]);
        }
        ch.finish_post_hashed(h.digest(), /*corrupt_in_flight=*/true);
    }
    const auto& got = ch.begin_receive_deferred();
    const std::uint64_t rh = hash::fnv1a_elems4(got.data(), got.size());
    try {
        ch.verify_receive(rh);
        FAIL() << "deferred verify missed corruption";
    } catch (const HaloFaultError& e) {
        EXPECT_EQ(e.fault, HaloFault::Corrupt);
        EXPECT_EQ(e.owner_rank, 4);
        EXPECT_EQ(e.suspect_rank, 9);
    }
}

TEST(ResilienceChannel, DeferredVerifyPassesCleanMessages) {
    HaloChannel<double> ch;
    ch.enable_guard(ChannelGuard{std::chrono::seconds(2), true}, 0, 1, 0);
    for (int msg = 0; msg < 3; ++msg) {
        auto& buf = ch.begin_post(17);
        hash::Fnv4 h;
        for (std::size_t n = 0; n < buf.size(); ++n) {
            buf[n] = static_cast<double>(msg) + 0.5 * static_cast<double>(n);
            h.add(buf[n]);
        }
        ch.finish_post_hashed(h.digest());
        const auto& got = ch.begin_receive_deferred();
        hash::Fnv4 rh;
        double sink = 0.0;
        for (std::size_t n = 0; n < got.size(); ++n) {
            sink += got[n];  // "unpack" fused with the hash
            rh.add(got[n]);
        }
        ch.verify_receive(rh.digest());
        ch.finish_receive();
        EXPECT_GT(sink, 0.0);
    }
}

// ---------------------------------------------------------------------
// Sampled watchdog (unit level).
// ---------------------------------------------------------------------

// With stride S the scan of row (j,k) starts at (step + j + k) % S, so
// a single bad cell at interior i is seen exactly when
// step ≡ (i - j - k) (mod S). The rotation guarantees every cell is
// visited within S scans even without a full sweep.
TEST(WatchdogSampled, StridedScanRotatesAcrossSteps) {
    GridSpec spec = make_global();
    Grid<double> grid(spec);
    State<double> state(grid, SpeciesSet::dry());
    state.rho.fill(1.0);
    state.rhotheta.fill(300.0);
    state.p.fill(1.0e5);
    state.rhotheta(5, 0, 0) = std::numeric_limits<double>::quiet_NaN();

    resilience::WatchdogConfig cfg;
    cfg.sample_stride = 4;
    cfg.full_sweep_period = 8;
    EXPECT_EQ(cfg.detection_bound(), 8);
    resilience::Watchdog<double> dog(cfg);
    for (long long step = 1; step <= 8; ++step) {
        resilience::HealthReport report;
        const int found = dog.scan(grid, state, 4.0, 0, step, report);
        // i=5, j=0, k=0: strided hit iff step % 4 == 1; step 8 is the
        // periodic exhaustive sweep and must hit regardless.
        const bool expect_hit = (step % 4 == 1) || (step % 8 == 0);
        EXPECT_EQ(found, expect_hit ? 1 : 0) << "step " << step;
        if (expect_hit) {
            const auto* f = report.first("nonfinite");
            ASSERT_NE(f, nullptr);
            EXPECT_EQ(f->i, 5);
            EXPECT_EQ(f->j, 0);
            EXPECT_EQ(f->k, 0);
        }
    }
}

TEST(WatchdogSampled, SamplePeriodGatesScanCadence) {
    GridSpec spec = make_global();
    Grid<double> grid(spec);
    State<double> state(grid, SpeciesSet::dry());
    state.rho.fill(1.0);
    state.rhotheta.fill(300.0);
    state.p.fill(1.0e5);
    state.rho(2, 2, 2) = std::numeric_limits<double>::quiet_NaN();

    resilience::WatchdogConfig cfg;
    cfg.sample_period = 3;
    EXPECT_EQ(cfg.detection_bound(), 3);
    resilience::Watchdog<double> dog(cfg);
    EXPECT_FALSE(dog.scan_due(1));
    EXPECT_FALSE(dog.scan_due(2));
    EXPECT_TRUE(dog.scan_due(3));
    resilience::HealthReport off_report;
    EXPECT_EQ(dog.scan(grid, state, 4.0, 0, 1, off_report), 0);
    EXPECT_TRUE(off_report.healthy());
    resilience::HealthReport on_report;
    EXPECT_EQ(dog.scan(grid, state, 4.0, 0, 3, on_report), 1);
    EXPECT_TRUE(on_report.has("nonfinite"));
}

// The row-parallel scan must report the same "first" bad cell (fixed
// j,k,i traversal order) no matter how the rows were chunked over
// threads.
TEST(WatchdogSampled, ParallelScanFindingIsDeterministic) {
    GridSpec spec = make_global();
    Grid<double> grid(spec);
    State<double> state(grid, SpeciesSet::dry());
    state.rho.fill(1.0);
    state.rhotheta.fill(300.0);
    state.p.fill(1.0e5);
    // Two bad cells in the same field; j=3 precedes j=7 in traversal
    // order, so (2,3,1) is the canonical finding.
    state.rho(2, 3, 1) = std::numeric_limits<double>::quiet_NaN();
    state.rho(1, 7, 0) = std::numeric_limits<double>::quiet_NaN();

    resilience::Watchdog<double> dog;
    for (std::size_t threads : {std::size_t(1), std::size_t(4)}) {
        ThreadPool pool(threads);
        ThreadPool::ScopedOverride guard(pool);
        resilience::HealthReport report;
        EXPECT_EQ(dog.scan(grid, state, 4.0, 0, 0, report), 1);
        const auto* f = report.first("nonfinite");
        ASSERT_NE(f, nullptr);
        EXPECT_EQ(f->field, "rho");
        EXPECT_EQ(f->i, 2);
        EXPECT_EQ(f->j, 3);
        EXPECT_EQ(f->k, 1);
    }
}

// ---------------------------------------------------------------------
// Async snapshots (runner level).
// ---------------------------------------------------------------------

void expect_padded_bitwise(const State<double>& a, const State<double>& b) {
    const auto eq = [](const Array3<double>& x, const Array3<double>& y,
                       const char* name) {
        ASSERT_EQ(x.size(), y.size()) << name;
        EXPECT_EQ(std::memcmp(x.data(), y.data(), x.size() * sizeof(double)),
                  0)
            << name;
    };
    eq(a.rho, b.rho, "rho");
    eq(a.rhou, b.rhou, "rhou");
    eq(a.rhov, b.rhov, "rhov");
    eq(a.rhow, b.rhow, "rhow");
    eq(a.rhotheta, b.rhotheta, "rhotheta");
    eq(a.p, b.p, "p");
    eq(a.rho_ref, b.rho_ref, "rho_ref");
    eq(a.p_ref, b.p_ref, "p_ref");
    eq(a.rhotheta_ref, b.rhotheta_ref, "rhotheta_ref");
    eq(a.cs2, b.cs2, "cs2");
    ASSERT_EQ(a.tracers.size(), b.tracers.size());
    for (std::size_t n = 0; n < a.tracers.size(); ++n) {
        eq(a.tracers[n], b.tracers[n], "tracer");
    }
}

// The async double-buffered snapshot must hold exactly the rank states
// as of its capture step — bitwise, including halos and the static
// reference fields — and a restore from it must replay to the same
// trajectory as the uninterrupted run.
TEST(ResilienceSnapshot, AsyncSnapshotRestoresBitwiseStateAndReplays) {
    const auto spec = make_global();
    const auto cfg = make_stepper_cfg();
    const auto species = SpeciesSet::warm_rain();
    Grid<double> grid(spec);
    State<double> initial(grid, species);
    init_case(grid, species, initial);

    auto md = resilient_config(OverlapMode::Split);
    md.resilience.checkpoint_interval = 3;
    MultiDomainRunner<double> runner(spec, 2, 2, species, cfg, md);
    runner.scatter(initial);
    runner.advance(3);
    std::vector<State<double>> at3;
    for (Index r = 0; r < runner.rank_count(); ++r) {
        at3.push_back(runner.rank_state(r));
    }
    runner.advance(2);  // steps 4,5 — snapshot cadence not due yet
    State<double> ref5(grid, species);
    runner.gather(ref5);

    runner.restore_last_snapshot();
    EXPECT_EQ(runner.step_index(), 3);
    EXPECT_NE(runner.recovery_log().find("rollback to step 3"),
              std::string::npos);
    EXPECT_NE(runner.recovery_log().find("manual restore"),
              std::string::npos);
    for (Index r = 0; r < runner.rank_count(); ++r) {
        expect_padded_bitwise(at3[static_cast<std::size_t>(r)],
                              runner.rank_state(r));
    }

    runner.advance(2);  // replay 4,5
    EXPECT_EQ(runner.step_index(), 5);
    State<double> got5(grid, species);
    runner.gather(got5);
    expect_bitwise(ref5, got5);
}

TEST(ResilienceSnapshot, ManualRestoreRequiresResilience) {
    const auto spec = make_global();
    const auto cfg = make_stepper_cfg();
    MultiDomainConfig md;  // resilience off
    MultiDomainRunner<double> runner(spec, 1, 1, SpeciesSet::dry(), cfg, md);
    EXPECT_THROW(runner.restore_last_snapshot(), Error);
}

// ---------------------------------------------------------------------
// Sampled watchdog + async snapshots end to end.
// ---------------------------------------------------------------------

// A strided watchdog may miss a fresh single-cell corruption; the NaN
// then spreads through the next step's stencils and implicit solves,
// the following scan catches it, and rollback lands on the last clean
// snapshot (snapshots copy the stage workspace, which injected faults
// never touch). The recovered trajectory must still equal a clean run
// bitwise, and detection must stay within the configured bound.
TEST(ResilienceRecovery, SampledWatchdogRecoversBitwiseWithinBound) {
    const auto spec = make_global();
    const auto cfg = make_stepper_cfg();
    const auto species = SpeciesSet::dry();
    Grid<double> grid(spec);
    State<double> initial(grid, species);
    init_case(grid, species, initial);

    State<double> ref(grid, species);
    {
        MultiDomainRunner<double> clean(spec, 2, 2, species, cfg,
                                        resilient_config(OverlapMode::None));
        clean.scatter(initial);
        clean.advance(5);
        clean.gather(ref);
    }

    FaultPlan plan;
    plan.push_back({FaultKind::FieldNaN, 2, 1, VarId::RhoTheta, 4, 2, 3, {}});
    auto md = resilient_config(OverlapMode::None, plan);
    md.resilience.watchdog.sample_stride = 4;
    md.resilience.watchdog.full_sweep_period = 4;
    ASSERT_EQ(md.resilience.watchdog.detection_bound(), 4);
    MultiDomainRunner<double> runner(spec, 2, 2, species, cfg, md);
    runner.scatter(initial);
    runner.advance(5);

    // Injected at step 1; the strided scan at step 1 starts row
    // (j=2,k=3) at offset (1+2+3)%4 = 2 and steps by 4, so cell i=4 is
    // missed. By step 2 the NaN has spread wide enough for the strided
    // scan; rollback to the clean step-2 snapshot, replay bitwise.
    EXPECT_NE(runner.recovery_log().find("rollback to step 2"),
              std::string::npos);
    EXPECT_NE(runner.recovery_log().find("nonfinite"), std::string::npos);
    EXPECT_EQ(runner.step_index(), 5);
    State<double> got(grid, species);
    runner.gather(got);
    expect_bitwise(ref, got);
}

// ---------------------------------------------------------------------
// Guarded-mode forcing for CI.
// ---------------------------------------------------------------------

TEST(ResilienceConfigEnv, ForceGuardedFlipsDisabledRunners) {
    const auto spec = make_global();
    const auto cfg = make_stepper_cfg();
    ASSERT_EQ(setenv("ASUCA_FORCE_GUARDED", "1", 1), 0);
    {
        MultiDomainConfig md;  // resilience off in the config...
        MultiDomainRunner<double> runner(spec, 2, 2, SpeciesSet::dry(), cfg,
                                         md);
        EXPECT_TRUE(runner.resilience_enabled());  // ...forced on by env
    }
    {
        // A fault plan with resilience disabled stays a config error —
        // the env override must not launder it into a valid setup.
        MultiDomainConfig md;
        md.resilience.faults.push_back(
            {FaultKind::FieldNaN, 0, 0, VarId::Rho, 0, 0, 0, {}});
        EXPECT_THROW(
            MultiDomainRunner<double>(spec, 2, 2, SpeciesSet::dry(), cfg, md),
            Error);
    }
    ASSERT_EQ(unsetenv("ASUCA_FORCE_GUARDED"), 0);
    MultiDomainConfig md;
    MultiDomainRunner<double> runner(spec, 2, 2, SpeciesSet::dry(), cfg, md);
    EXPECT_FALSE(runner.resilience_enabled());
}

}  // namespace
}  // namespace asuca::cluster
