// Multi-domain equivalence: a decomposed run with real halo exchanges
// must reproduce the single-domain run to machine precision — the
// decomposition analog of the paper's round-off-level CPU/GPU agreement.
#include <gtest/gtest.h>

#include "src/cluster/multidomain.hpp"
#include "src/core/diagnostics.hpp"
#include "src/core/initial.hpp"

namespace asuca::cluster {
namespace {

GridSpec make_global(TerrainFunction terrain) {
    GridSpec s;
    s.nx = 24;
    s.ny = 12;
    s.nz = 10;
    s.dx = 1000.0;
    s.dy = 1000.0;
    s.ztop = 10000.0;
    s.terrain = std::move(terrain);
    return s;
}

TimeStepperConfig make_stepper_cfg() {
    TimeStepperConfig cfg;
    cfg.dt = 4.0;
    cfg.n_short_steps = 6;
    cfg.diffusion.kh = 10.0;
    cfg.diffusion.kv = 1.0;
    cfg.sponge.z_start = 8000.0;
    return cfg;
}

void init_case(const Grid<double>& grid, const SpeciesSet& species,
               State<double>& state) {
    initialize_hydrostatic(grid, AtmosphereProfile::constant_n(292.0, 0.011),
                           8.0, 3.0, state);
    if (species.contains(Species::Vapor)) {
        set_relative_humidity(
            grid, [](double z) { return z < 2000.0 ? 0.8 : 0.3; }, state);
    }
}

struct DecompShape {
    Index px, py;
};

class MultiDomainShapes : public ::testing::TestWithParam<DecompShape> {};

TEST_P(MultiDomainShapes, MatchesSingleDomainBitwise) {
    const auto shape = GetParam();
    const auto spec = make_global(
        bell_mountain(350.0, 3000.0, 12000.0, 6000.0));
    const auto cfg = make_stepper_cfg();
    const auto species = SpeciesSet::warm_rain();

    // Reference: single-domain run.
    Grid<double> grid(spec);
    State<double> ref(grid, species);
    init_case(grid, species, ref);
    TimeStepper<double> stepper(grid, species, cfg);
    State<double> initial = ref;
    for (int n = 0; n < 3; ++n) stepper.step(ref);

    // Decomposed run from the same initial state.
    MultiDomainRunner<double> runner(spec, shape.px, shape.py, species, cfg);
    runner.scatter(initial);
    for (int n = 0; n < 3; ++n) runner.step();
    State<double> gathered(grid, species);
    runner.gather(gathered);

    EXPECT_EQ(max_abs_diff(ref.rho, gathered.rho), 0.0);
    EXPECT_EQ(max_abs_diff(ref.rhou, gathered.rhou), 0.0);
    EXPECT_EQ(max_abs_diff(ref.rhov, gathered.rhov), 0.0);
    EXPECT_EQ(max_abs_diff(ref.rhow, gathered.rhow), 0.0);
    EXPECT_EQ(max_abs_diff(ref.rhotheta, gathered.rhotheta), 0.0);
    for (std::size_t n = 0; n < species.count(); ++n) {
        EXPECT_EQ(max_abs_diff(ref.tracers[n], gathered.tracers[n]), 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MultiDomainShapes,
    ::testing::Values(DecompShape{2, 1}, DecompShape{1, 2}, DecompShape{2, 2},
                      DecompShape{4, 3}, DecompShape{3, 4}),
    [](const auto& info) {
        return std::to_string(info.param.px) + "x" +
               std::to_string(info.param.py);
    });

TEST(MultiDomain, ScatterGatherRoundTrips) {
    const auto spec = make_global(flat_terrain());
    const auto species = SpeciesSet::dry();
    Grid<double> grid(spec);
    State<double> global(grid, species);
    init_case(grid, species, global);

    MultiDomainRunner<double> runner(spec, 3, 2, species, make_stepper_cfg());
    runner.scatter(global);
    State<double> back(grid, species);
    runner.gather(back);
    EXPECT_EQ(max_abs_diff(global.rho, back.rho), 0.0);
    EXPECT_EQ(max_abs_diff(global.rhou, back.rhou), 0.0);
    EXPECT_EQ(max_abs_diff(global.rhotheta, back.rhotheta), 0.0);
}

TEST(MultiDomain, ExchangedHalosEqualPeriodicWrap) {
    // After scatter, rank halos must carry the periodic-global values.
    const auto spec = make_global(flat_terrain());
    const auto species = SpeciesSet::dry();
    Grid<double> grid(spec);
    State<double> global(grid, species);
    init_case(grid, species, global);
    // A recognizable pattern.
    for (Index j = 0; j < spec.ny; ++j)
        for (Index k = 0; k < spec.nz; ++k)
            for (Index i = 0; i < spec.nx; ++i)
                global.rho(i, j, k) =
                    1000.0 * static_cast<double>(i) +
                    10.0 * static_cast<double>(j) + static_cast<double>(k);

    MultiDomainRunner<double> runner(spec, 2, 2, species, make_stepper_cfg());
    runner.scatter(global);
    // Rank 0 (owns i in [0,12), j in [0,6)): its left halo wraps to
    // global i = 23, its y halo wraps to global j = 11.
    const auto& s0 = runner.rank_state(0);
    EXPECT_EQ(s0.rho(-1, 2, 3), global.rho(23, 2, 3));
    EXPECT_EQ(s0.rho(-3, 2, 3), global.rho(21, 2, 3));
    EXPECT_EQ(s0.rho(12, 2, 3), global.rho(12, 2, 3));  // right neighbor
    EXPECT_EQ(s0.rho(2, -1, 3), global.rho(2, 11, 3));
    // Corner.
    EXPECT_EQ(s0.rho(-1, -1, 0), global.rho(23, 11, 0));
}

TEST(MultiDomain, RejectsIndivisibleDecomposition) {
    const auto spec = make_global(flat_terrain());
    EXPECT_THROW(MultiDomainRunner<double>(spec, 5, 1, SpeciesSet::dry(),
                                           make_stepper_cfg()),
                 Error);
}

}  // namespace
}  // namespace asuca::cluster
