// Tests for the thread-pool parallel substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "src/parallel/thread_pool.hpp"

namespace asuca {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    const Index n = 10007;  // prime: uneven chunks
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](Index b, Index e) {
        for (Index i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
    });
    for (Index i = 0; i < n; ++i) {
        EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
    }
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
    ThreadPool pool(3);
    const Index n = 100000;
    std::atomic<long long> sum{0};
    pool.parallel_for(n, [&](Index b, Index e) {
        long long local = 0;
        for (Index i = b; i < e; ++i) local += i;
        sum += local;
    });
    EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ThreadPool, EmptyAndSingleRangesWork) {
    ThreadPool pool(2);
    int calls = 0;
    pool.parallel_for(0, [&](Index, Index) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallel_for(1, [&](Index b, Index e) {
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 1);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, PropagatesExceptions) {
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(1000,
                                   [&](Index b, Index) {
                                       if (b > 0) {
                                           throw std::runtime_error("boom");
                                       }
                                   }),
                 std::runtime_error);
    // Pool stays usable afterwards.
    std::atomic<int> ok{0};
    pool.parallel_for_each(10, [&](Index) { ok++; });
    EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, SingleThreadRunsInline) {
    ThreadPool pool(1);
    EXPECT_EQ(pool.num_threads(), 1u);
    const auto caller = std::this_thread::get_id();
    pool.parallel_for(100, [&](Index, Index) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(ThreadPool, GlobalPoolIsReusable) {
    std::atomic<int> total{0};
    for (int round = 0; round < 5; ++round) {
        parallel_for(1000, [&](Index b, Index e) {
            total += static_cast<int>(e - b);
        });
    }
    EXPECT_EQ(total.load(), 5000);
}

}  // namespace
}  // namespace asuca
