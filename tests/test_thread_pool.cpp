// Tests for the thread-pool parallel substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <thread>
#include <vector>

#include "src/parallel/thread_pool.hpp"

namespace asuca {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    const Index n = 10007;  // prime: uneven chunks
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](Index b, Index e) {
        for (Index i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
    });
    for (Index i = 0; i < n; ++i) {
        EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
    }
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
    ThreadPool pool(3);
    const Index n = 100000;
    std::atomic<long long> sum{0};
    pool.parallel_for(n, [&](Index b, Index e) {
        long long local = 0;
        for (Index i = b; i < e; ++i) local += i;
        sum += local;
    });
    EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ThreadPool, EmptyAndSingleRangesWork) {
    ThreadPool pool(2);
    int calls = 0;
    pool.parallel_for(0, [&](Index, Index) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallel_for(1, [&](Index b, Index e) {
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 1);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, PropagatesExceptions) {
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(1000,
                                   [&](Index b, Index) {
                                       if (b > 0) {
                                           throw std::runtime_error("boom");
                                       }
                                   }),
                 std::runtime_error);
    // Pool stays usable afterwards.
    std::atomic<int> ok{0};
    pool.parallel_for_each(10, [&](Index) { ok++; });
    EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, SingleThreadRunsInline) {
    ThreadPool pool(1);
    EXPECT_EQ(pool.num_threads(), 1u);
    const auto caller = std::this_thread::get_id();
    pool.parallel_for(100, [&](Index, Index) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(ThreadPool, GlobalPoolIsReusable) {
    std::atomic<int> total{0};
    for (int round = 0; round < 5; ++round) {
        parallel_for(1000, [&](Index b, Index e) {
            total += static_cast<int>(e - b);
        });
    }
    EXPECT_EQ(total.load(), 5000);
}

TEST(ThreadPool, NestedParallelForRunsInlineSerially) {
    ThreadPool pool(4);
    std::atomic<long long> total{0};
    std::atomic<int> outer_bodies{0};
    pool.parallel_for(64, [&](Index ob, Index oe) {
        ++outer_bodies;
        EXPECT_TRUE(ThreadPool::in_parallel_region());
        // Nested call: must execute the whole range inline on this
        // thread, in one body invocation, without deadlocking.
        const auto me = std::this_thread::get_id();
        int inner_bodies = 0;
        pool.parallel_for(1000, [&](Index b, Index e) {
            ++inner_bodies;
            EXPECT_EQ(std::this_thread::get_id(), me);
            long long local = 0;
            for (Index i = b; i < e; ++i) local += 1;
            total += local * (oe - ob);
        });
        EXPECT_EQ(inner_bodies, 1);
    });
    EXPECT_GE(outer_bodies.load(), 1);
    EXPECT_EQ(total.load(), 64LL * 1000LL);
    EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST(ThreadPool, HonorsNumThreadsEnvVar) {
    ::setenv("ASUCA_NUM_THREADS", "3", 1);
    {
        ThreadPool pool(0);
        EXPECT_EQ(pool.num_threads(), 3u);
    }
    // Malformed values fall back to hardware concurrency (>= 1).
    ::setenv("ASUCA_NUM_THREADS", "garbage", 1);
    {
        ThreadPool pool(0);
        EXPECT_GE(pool.num_threads(), 1u);
    }
    ::unsetenv("ASUCA_NUM_THREADS");
    // An explicit count always wins over the environment.
    ::setenv("ASUCA_NUM_THREADS", "7", 1);
    {
        ThreadPool pool(2);
        EXPECT_EQ(pool.num_threads(), 2u);
    }
    ::unsetenv("ASUCA_NUM_THREADS");
}

TEST(ThreadPool, SetGlobalThreadsReplacesThePool) {
    ThreadPool::set_global_threads(3);
    EXPECT_EQ(ThreadPool::global().num_threads(), 3u);
    std::atomic<int> total{0};
    parallel_for(100, [&](Index b, Index e) {
        total += static_cast<int>(e - b);
    });
    EXPECT_EQ(total.load(), 100);
    ThreadPool::set_global_threads(0);  // back to the default
}

TEST(ThreadPool, ParallelForRangeCoversHaloExtendedRange) {
    ThreadPool::set_global_threads(4);
    const Index lo = -3, hi = 29;
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(hi - lo));
    parallel_for_range(lo, hi, [&](Index b, Index e) {
        EXPECT_GE(b, lo);
        EXPECT_LE(e, hi);
        for (Index j = b; j < e; ++j) {
            hits[static_cast<std::size_t>(j - lo)]++;
        }
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
    ThreadPool::set_global_threads(0);
}

}  // namespace
}  // namespace asuca
