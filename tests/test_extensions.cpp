// Tests for the production extensions: Davies lateral relaxation,
// generalized (ice-phase) sedimentation, and checkpoint/restart.
#include <gtest/gtest.h>

#include <filesystem>

#include "src/core/diagnostics.hpp"
#include "src/core/lateral_relaxation.hpp"
#include "src/core/scenarios.hpp"
#include "src/io/checkpoint.hpp"
#include "src/physics/sedimentation.hpp"

namespace asuca {
namespace {

// ---------------------------------------------------------------- Davies

struct RelaxSetup {
    GridSpec spec;
    Grid<double> grid;
    State<double> state;
    std::shared_ptr<State<double>> target;

    RelaxSetup() : spec(make_spec()), grid(spec),
                   state(grid, SpeciesSet::dry()),
                   target(std::make_shared<State<double>>(
                       grid, SpeciesSet::dry())) {
        initialize_hydrostatic(grid, AtmosphereProfile::isentropic(300.0),
                               0.0, 0.0, state);
        *target = state;
        // Target has a different wind everywhere.
        target->rhou.fill(5.0);
    }

    static GridSpec make_spec() {
        GridSpec s;
        s.nx = 20;
        s.ny = 20;
        s.nz = 6;
        return s;
    }
};

TEST(LateralRelaxation, WeightsAreDaviesShaped) {
    RelaxSetup su;
    LateralRelaxation<double> relax(su.grid, {5, 600.0});
    EXPECT_DOUBLE_EQ(relax.weight(0, 10), 1.0);       // on the boundary
    EXPECT_DOUBLE_EQ(relax.weight(10, 0), 1.0);
    EXPECT_DOUBLE_EQ(relax.weight(10, 10), 0.0);      // interior
    EXPECT_NEAR(relax.weight(1, 10), 16.0 / 25.0, 1e-12);
    EXPECT_NEAR(relax.weight(4, 10), 1.0 / 25.0, 1e-12);
    // Monotone decay inward.
    for (Index d = 0; d < 4; ++d) {
        EXPECT_GT(relax.weight(d, 10), relax.weight(d + 1, 10));
    }
}

TEST(LateralRelaxation, RimConvergesInteriorDoesNot) {
    RelaxSetup su;
    LateralRelaxation<double> relax(su.grid, {4, 100.0});
    relax.add_frame(0.0, su.target);
    const double u0_interior = su.state.rhou(10, 10, 3);
    // Edge rate = dt/tau = 0.1 per call: 150 calls ~ 15 e-folding times.
    for (int n = 0; n < 150; ++n) {
        relax.apply(0.0, 10.0, su.state);
    }
    // Edge fully pulled to target, interior untouched.
    EXPECT_NEAR(su.state.rhou(0, 10, 3), 5.0, 1e-3);
    EXPECT_DOUBLE_EQ(su.state.rhou(10, 10, 3), u0_interior);
    // Halos are specified directly from the target.
    EXPECT_DOUBLE_EQ(su.state.rhou(-2, 10, 3), 5.0);
}

TEST(LateralRelaxation, InterpolatesFramesInTime) {
    RelaxSetup su;
    auto frame2 = std::make_shared<State<double>>(*su.target);
    frame2->rhou.fill(15.0);
    LateralRelaxation<double> relax(su.grid, {4, 1e-9});  // instant pull
    relax.add_frame(0.0, su.target);
    relax.add_frame(3600.0, frame2);
    relax.apply(1800.0, 1.0, su.state);
    // Halfway between the hourly frames: target = 10.
    EXPECT_NEAR(su.state.rhou(0, 10, 3), 10.0, 1e-9);
    // Before the first / after the last frame: clamped.
    relax.apply(-100.0, 1.0, su.state);
    EXPECT_NEAR(su.state.rhou(0, 10, 3), 5.0, 1e-9);
    relax.apply(7200.0, 1.0, su.state);
    EXPECT_NEAR(su.state.rhou(0, 10, 3), 15.0, 1e-9);
}

TEST(LateralRelaxation, RejectsBadSetups) {
    RelaxSetup su;
    EXPECT_THROW(LateralRelaxation<double>(su.grid, {15, 600.0}), Error);
    LateralRelaxation<double> relax(su.grid, {4, 600.0});
    EXPECT_THROW(relax.apply(0.0, 1.0, su.state), Error);  // no frames
    relax.add_frame(100.0, su.target);
    EXPECT_THROW(relax.add_frame(50.0, su.target), Error);  // out of order
}

// ------------------------------------------------------- sedimentation

TEST(Sedimentation, FallLawsOrderPhysically) {
    // At equal content, hail falls fastest, then graupel; cloud/vapor
    // do not fall at all.
    const double rq = 1e-3, rho = 1.0;
    const double vr = fall_law_of(Species::Rain).velocity(rq, rho);
    const double vs = fall_law_of(Species::Snow).velocity(rq, rho);
    const double vg = fall_law_of(Species::Graupel).velocity(rq, rho);
    const double vh = fall_law_of(Species::Hail).velocity(rq, rho);
    EXPECT_GT(vh, vg);
    EXPECT_GT(vg, vs);
    EXPECT_GT(vr, 0.0);
    EXPECT_DOUBLE_EQ(fall_law_of(Species::Cloud).velocity(rq, rho), 0.0);
    // Thin air -> faster fall (the sqrt(rho0/rho) factor).
    EXPECT_GT(fall_law_of(Species::Rain).velocity(rq, 0.5),
              fall_law_of(Species::Rain).velocity(rq, 1.0));
}

TEST(Sedimentation, AllIceSpeciesFallAndConserve) {
    GridSpec spec;
    spec.nx = 3;
    spec.ny = 3;
    spec.nz = 16;
    spec.ztop = 8000.0;
    Grid<double> grid(spec);
    State<double> s(grid, SpeciesSet::full());
    initialize_hydrostatic(grid, AtmosphereProfile::constant_n(290.0, 0.01),
                           0.0, 0.0, s);
    for (Species sp : {Species::Rain, Species::Snow, Species::Graupel,
                       Species::Hail}) {
        for (Index k = 10; k < 13; ++k) {
            s.tracer(sp)(1, 1, k) = 1e-3 * s.rho(1, 1, k);
        }
    }
    auto column_water = [&](Species sp) {
        double sum = 0.0;
        for (Index k = 0; k < spec.nz; ++k) {
            sum += static_cast<double>(s.tracer(sp)(1, 1, k)) *
                   static_cast<double>(grid.dz_center()(1, 1, k));
        }
        return sum;
    };
    const double before = column_water(Species::Rain) +
                          column_water(Species::Snow) +
                          column_water(Species::Graupel) +
                          column_water(Species::Hail);

    Sedimentation<double> sed(grid);
    for (int n = 0; n < 120; ++n) sed.apply(s, 20.0);

    double after = 0.0, fallen = 0.0;
    for (Species sp : {Species::Rain, Species::Snow, Species::Graupel,
                       Species::Hail}) {
        after += column_water(sp);
        fallen += sed.accumulated(sp)(1, 1);
        EXPECT_GT(sed.accumulated(sp)(1, 1), 0.0)
            << name_of(sp) << " never reached the surface";
    }
    EXPECT_NEAR(after + fallen, before, 1e-6 * before);
    // Hail (fastest) has delivered the largest fraction to the ground.
    EXPECT_GT(sed.accumulated(Species::Hail)(1, 1),
              sed.accumulated(Species::Snow)(1, 1));
    EXPECT_NEAR(sed.total_at(1, 1), fallen, 1e-12);
}

// ---------------------------------------------------- checkpoint/restart

TEST(Checkpoint, ExactRestartReproducesRun) {
    namespace fs = std::filesystem;
    const auto path = fs::temp_directory_path() / "asuca_ckpt.bin";

    auto cfg = scenarios::mountain_wave_config<double>(20, 8, 12);
    AsucaModel<double> a(cfg);
    scenarios::init_mountain_wave(a);
    a.run(3);
    io::save_checkpoint(path.string(), a.state(), a.time());
    a.run(3);  // reference continues to step 6

    AsucaModel<double> b(cfg);  // fresh model, different initial state
    b.initialize(AtmosphereProfile::isentropic(300.0));
    const double t = io::load_checkpoint(path.string(), b.state());
    EXPECT_DOUBLE_EQ(t, 15.0);  // 3 steps of dt = 5 s
    b.run(3);

    EXPECT_EQ(max_abs_diff(a.state().rho, b.state().rho), 0.0);
    EXPECT_EQ(max_abs_diff(a.state().rhow, b.state().rhow), 0.0);
    EXPECT_EQ(max_abs_diff(a.state().rhotheta, b.state().rhotheta), 0.0);
    for (std::size_t n = 0; n < a.state().tracers.size(); ++n) {
        EXPECT_EQ(max_abs_diff(a.state().tracers[n], b.state().tracers[n]),
                  0.0);
    }
    fs::remove(path);
}

TEST(Checkpoint, RejectsMismatchedShapeAndPrecision) {
    namespace fs = std::filesystem;
    const auto path = fs::temp_directory_path() / "asuca_ckpt2.bin";

    auto cfg = scenarios::mountain_wave_config<double>(20, 8, 12);
    AsucaModel<double> a(cfg);
    scenarios::init_mountain_wave(a);
    io::save_checkpoint(path.string(), a.state(), 0.0);

    // Wrong mesh.
    auto cfg2 = scenarios::mountain_wave_config<double>(16, 8, 12);
    AsucaModel<double> wrong(cfg2);
    scenarios::init_mountain_wave(wrong);
    EXPECT_THROW(io::load_checkpoint(path.string(), wrong.state()), Error);

    // Wrong precision.
    auto cfgf = scenarios::mountain_wave_config<float>(20, 8, 12);
    AsucaModel<float> fmodel(cfgf);
    scenarios::init_mountain_wave(fmodel);
    EXPECT_THROW(io::load_checkpoint(path.string(), fmodel.state()), Error);

    // Wrong species set.
    auto cfgd = scenarios::mountain_wave_config<double>(20, 8, 12, false);
    AsucaModel<double> dry(cfgd);
    dry.initialize(AtmosphereProfile::isentropic(300.0));
    EXPECT_THROW(io::load_checkpoint(path.string(), dry.state()), Error);

    fs::remove(path);
}

TEST(Checkpoint, RejectsGarbageFile) {
    namespace fs = std::filesystem;
    const auto path = fs::temp_directory_path() / "asuca_garbage.bin";
    {
        std::ofstream out(path);
        out << "this is not a checkpoint";
    }
    auto cfg = scenarios::mountain_wave_config<double>(20, 8, 12);
    AsucaModel<double> m(cfg);
    scenarios::init_mountain_wave(m);
    EXPECT_THROW(io::load_checkpoint(path.string(), m.state()), Error);
    fs::remove(path);
}

}  // namespace
}  // namespace asuca
