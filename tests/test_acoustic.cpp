// Tests for the HE-VI acoustic stepper: exact steadiness, stability of
// the implicit vertical solve, and hydrostatic adjustment behaviour.
#include <gtest/gtest.h>

#include "src/core/acoustic.hpp"
#include "src/core/diagnostics.hpp"
#include "src/core/initial.hpp"
#include "src/core/tendencies.hpp"

namespace asuca {
namespace {

struct AcousticSetup {
    GridSpec spec;
    Grid<double> grid;
    State<double> state;
    Tendencies<double> slow;
    AcousticStepper<double> stepper;

    explicit AcousticSetup(double beta = 0.6,
                           TerrainFunction terrain = flat_terrain())
        : spec(make_spec(std::move(terrain))), grid(spec),
          state(grid, SpeciesSet::dry()), slow(grid, SpeciesSet::dry()),
          stepper(grid, AcousticConfig{beta}) {
        initialize_hydrostatic(grid,
                               AtmosphereProfile::constant_n(300.0, 0.01),
                               0.0, 0.0, state);
        slow.clear();
    }

    static GridSpec make_spec(TerrainFunction terrain) {
        GridSpec s;
        s.nx = 12;
        s.ny = 8;
        s.nz = 16;
        s.dx = 1000.0;
        s.dy = 1000.0;
        s.ztop = 12000.0;
        s.terrain = std::move(terrain);
        return s;
    }
};

TEST(Acoustic, BalancedStateHasZeroDeviations) {
    AcousticSetup su;
    su.stepper.prepare(su.state);
    su.stepper.init_deviations(su.state, su.state);
    for (int n = 0; n < 10; ++n) {
        su.stepper.substep(su.slow, 1.0, LateralBc::Periodic);
    }
    EXPECT_EQ(max_abs(su.stepper.dw()), 0.0);
    EXPECT_EQ(max_abs(su.stepper.drho()), 0.0);
}

class AcousticBeta : public ::testing::TestWithParam<double> {};

TEST_P(AcousticBeta, PressurePerturbationStaysBounded) {
    // A theta' perturbation launches acoustic/gravity waves; with the
    // implicit vertical treatment the integration must stay bounded for
    // a vertical sound CFL (cs*dtau/dz ~ 0.45*340/750 >> 1 explicit limit).
    AcousticSetup su(GetParam());
    State<double> perturbed = su.state;
    add_theta_bubble(su.grid, 1.0, 6000.0, 4000.0, 5000.0, 3000.0, 3000.0,
                     2000.0, perturbed);
    su.stepper.prepare(su.state);
    su.stepper.init_deviations(perturbed, su.state);

    const double dtau = 1.0;  // vertical CFL cs*dtau/dz ~ 0.45
    double max_dw = 0.0;
    for (int n = 0; n < 300; ++n) {
        su.stepper.substep(su.slow, dtau, LateralBc::Periodic);
        max_dw = std::max(max_dw, max_abs(su.stepper.dw()));
        ASSERT_LT(max_abs(su.stepper.dw()), 1e3)
            << "blow-up at substep " << n << " (beta=" << GetParam() << ")";
    }
    EXPECT_GT(max_dw, 0.0);  // waves actually propagate
}

INSTANTIATE_TEST_SUITE_P(OffCentering, AcousticBeta,
                         ::testing::Values(0.5, 0.6, 0.8, 1.0));

TEST(Acoustic, RejectsExplicitBeta) {
    EXPECT_THROW(AcousticSetup su(0.3), Error);
    EXPECT_THROW(AcousticSetup su(1.2), Error);
}

TEST(Acoustic, SlowForcingIntegratesLinearly) {
    // With a constant slow tendency on rho*u and no pressure coupling
    // (uniform forcing => no divergence), du grows linearly in tau.
    AcousticSetup su;
    su.slow.rhou.fill(2.0);  // kg m^-2 s^-2
    su.stepper.prepare(su.state);
    su.stepper.init_deviations(su.state, su.state);
    for (int n = 0; n < 5; ++n) {
        su.stepper.substep(su.slow, 0.5, LateralBc::Periodic);
    }
    // After 2.5 s: du = 5.0 everywhere.
    auto& du = su.stepper.du();
    for (Index j = 0; j < su.spec.ny; ++j)
        for (Index k = 0; k < su.spec.nz; ++k)
            for (Index i = 0; i < su.spec.nx; ++i)
                EXPECT_NEAR(du(i, j, k), 5.0, 1e-9);
}

TEST(Acoustic, HydrostaticAdjustmentRemovesColumnImbalance) {
    // A column-wide density surplus creates downward buoyancy; the
    // implicit solve + continuity must start restoring balance rather
    // than amplifying the perturbation (energy radiates as sound).
    AcousticSetup su;
    State<double> perturbed = su.state;
    const Index h = su.grid.halo();
    for (Index j = -h; j < su.spec.ny + h; ++j)
        for (Index k = -h; k < su.spec.nz + h; ++k)
            for (Index i = -h; i < su.spec.nx + h; ++i)
                perturbed.rho(i, j, k) *= 1.001;
    su.stepper.prepare(su.state);
    su.stepper.init_deviations(perturbed, su.state);
    const double drho0 = max_abs(su.stepper.drho());
    for (int n = 0; n < 200; ++n) {
        su.stepper.substep(su.slow, 1.0, LateralBc::Periodic);
    }
    // The perturbation must not grow (beta > 0.5 damps the transients).
    EXPECT_LT(max_abs(su.stepper.drho()), 2.0 * drho0);
}

TEST(Acoustic, TerrainKinematicConditionHolds) {
    // Over terrain, the bottom dw must equal the metric part of the
    // horizontal momentum deviations (impermeable slope).
    AcousticSetup su(0.6, bell_ridge(500.0, 2000.0, 6000.0));
    initialize_hydrostatic(su.grid, AtmosphereProfile::constant_n(300.0, 0.01),
                           0.0, 0.0, su.state);
    su.slow.clear();
    su.slow.rhou.fill(1.0);  // accelerate flow over the ridge
    su.stepper.prepare(su.state);
    su.stepper.init_deviations(su.state, su.state);
    for (int n = 0; n < 10; ++n) {
        su.stepper.substep(su.slow, 0.5, LateralBc::Periodic);
    }
    const auto& zx = su.grid.slope_x_zface();
    auto& du = su.stepper.du();
    auto& dw = su.stepper.dw();
    for (Index i = 0; i < su.spec.nx; ++i) {
        const double dmu = 0.5 * (du(i, 3, 0) + du(i + 1, 3, 0));
        EXPECT_NEAR(dw(i, 3, 0), dmu * zx(i, 3, 0), 1e-10);
        if (std::abs(zx(i, 3, 0)) > 1e-4) {
            EXPECT_NE(dw(i, 3, 0), 0.0);  // slopes force vertical motion
        }
    }
}

}  // namespace
}  // namespace asuca
