// Tests of the AsucaModel facade: time bookkeeping, physics wiring
// (Kessler + ice sedimentation + surface fluxes), boundary relaxation
// attachment, the full 7-species configuration, and the ported
// thread-per-column tridiagonal kernel.
#include <gtest/gtest.h>

#include <random>

#include "src/core/scenarios.hpp"
#include "src/gpusim/ported_kernels.hpp"

namespace asuca {
namespace {

TEST(ModelFacade, TimeAndStepBookkeeping) {
    auto cfg = scenarios::warm_bubble_config<double>(12, 12, 10);
    cfg.stepper.dt = 3.0;
    AsucaModel<double> m(cfg);
    scenarios::init_warm_bubble(m, 1.0);
    EXPECT_DOUBLE_EQ(m.time(), 0.0);
    m.run(7);
    EXPECT_DOUBLE_EQ(m.time(), 21.0);
    EXPECT_EQ(m.step_count(), 7);
}

TEST(ModelFacade, FullSevenSpeciesConfigurationRuns) {
    // Transport of all seven water categories plus ice sedimentation —
    // the paper's "13 variables related to water substances" situation
    // (method-1 overlap targets exactly these kernels).
    auto cfg = scenarios::mountain_wave_config<double>(16, 8, 12);
    cfg.species = SpeciesSet::full();
    cfg.microphysics = true;
    cfg.ice_sedimentation = true;
    AsucaModel<double> m(cfg);
    scenarios::init_mountain_wave(m);
    // Put some snow aloft so the ice path does real work.
    for (Index j = 0; j < 8; ++j)
        for (Index i = 0; i < 16; ++i)
            m.state().tracer(Species::Snow)(i, j, 9) =
                5e-4 * m.state().rho(i, j, 9);
    m.stepper().apply_state_bcs(m.state());
    m.run(5);
    EXPECT_TRUE(m.is_finite());
    EXPECT_EQ(m.state().tracers.size(), 7u);
    // Snow must have moved (fallen and advected) without going negative.
    for (Index j = 0; j < 8; ++j)
        for (Index k = 0; k < 12; ++k)
            for (Index i = 0; i < 16; ++i)
                EXPECT_GE(m.state().tracer(Species::Snow)(i, j, k), 0.0);
}

TEST(ModelFacade, IceSedimentationRequiresIceSpecies) {
    auto cfg = scenarios::mountain_wave_config<double>(16, 8, 12);
    cfg.ice_sedimentation = true;  // but species are warm-rain only
    EXPECT_THROW(AsucaModel<double> m(cfg), Error);
}

TEST(ModelFacade, SurfaceDragSlowsLowLevelWind) {
    auto cfg = scenarios::mountain_wave_config<double>(16, 8, 12, false);
    cfg.species = SpeciesSet::dry();
    cfg.grid.terrain = flat_terrain();
    cfg.grid.ztop = 3000.0;  // dz = 250 m: a meaningful surface layer
    cfg.stepper.sponge.z_start = -1.0;
    cfg.surface_fluxes = true;
    cfg.surface.drag_coefficient = 1e-2;
    cfg.surface.surface_temperature = 0.0;  // drag only
    AsucaModel<double> m(cfg);
    m.initialize(AtmosphereProfile::constant_n(290.0, 0.01), 10.0, 0.0);
    const double u0 = m.state().rhou(8, 4, 0);
    const double u0_top = m.state().rhou(8, 4, 10);
    m.run(40);  // 200 s at Cd|V|/dz ~ 4e-4 1/s: ~8 % spin-down
    EXPECT_LT(m.state().rhou(8, 4, 0), 0.95 * u0);       // dragged
    EXPECT_GT(m.state().rhou(8, 4, 10), 0.97 * u0_top);  // aloft ~untouched
}

TEST(ModelFacade, OceanEvaporationMoistensBoundaryLayer) {
    auto cfg = scenarios::mountain_wave_config<double>(16, 8, 12);
    cfg.grid.terrain = flat_terrain();
    cfg.surface_fluxes = true;
    cfg.surface.surface_temperature = 295.0;
    AsucaModel<double> m(cfg);
    m.initialize(AtmosphereProfile::constant_n(290.0, 0.01), 10.0, 0.0);
    set_relative_humidity(m.grid(), [](double) { return 0.3; }, m.state());
    m.stepper().apply_state_bcs(m.state());
    const double qv0 = m.state().tracer(Species::Vapor)(8, 4, 0) /
                       m.state().rho(8, 4, 0);
    m.run(10);
    const double qv1 = m.state().tracer(Species::Vapor)(8, 4, 0) /
                       m.state().rho(8, 4, 0);
    EXPECT_GT(qv1, qv0);  // the ocean moistens dry air
}

TEST(ModelFacade, AttachedRelaxationPullsBoundaryWind) {
    auto cfg = scenarios::mountain_wave_config<double>(20, 20, 10, false);
    cfg.species = SpeciesSet::dry();
    cfg.grid.terrain = flat_terrain();
    cfg.stepper.bc = LateralBc::ZeroGradient;  // specified-boundary mode
    AsucaModel<double> m(cfg);
    m.initialize(AtmosphereProfile::constant_n(295.0, 0.01), 5.0, 0.0);

    // Boundary frames demand 12 m/s inflow.
    auto frame = std::make_shared<State<double>>(m.state());
    const Index h = m.grid().halo();
    for (Index j = -h; j < 20 + h; ++j)
        for (Index k = 0; k < 10; ++k)
            for (Index i = -h; i < 21 + h; ++i)
                frame->rhou(i, j, k) *= 12.0 / 5.0;
    auto relax = std::make_shared<LateralRelaxation<double>>(
        m.grid(), LateralRelaxationConfig{4, 30.0});
    relax->add_frame(0.0, frame);
    m.attach_lateral_relaxation(relax);

    m.run(20);
    EXPECT_TRUE(m.is_finite());
    const double u_edge = m.state().rhou(0, 10, 2) / m.state().rho(0, 10, 2);
    EXPECT_GT(u_edge, 9.0);  // pulled well toward the 12 m/s target

    // Control: the same run without relaxation keeps its 5 m/s inflow.
    AsucaModel<double> ctl(cfg);
    ctl.initialize(AtmosphereProfile::constant_n(295.0, 0.01), 5.0, 0.0);
    ctl.run(20);
    const double u_ctl =
        ctl.state().rhou(0, 10, 2) / ctl.state().rho(0, 10, 2);
    EXPECT_LT(u_ctl, 7.0);
}

TEST(PortedKernels, TridiagonalColumnsMatchReferenceBitwise) {
    // Random diagonally dominant systems per column.
    const Int3 ext{12, 10, 16};
    Array3<double> lo(ext, 0, Layout::XZY), di(ext, 0, Layout::XZY),
        up(ext, 0, Layout::XZY), rhs(ext, 0, Layout::XZY),
        sol(ext, 0, Layout::XZY);
    std::mt19937 rng(99);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (Index j = 0; j < ext.y; ++j)
        for (Index k = 0; k < ext.z; ++k)
            for (Index i = 0; i < ext.x; ++i) {
                lo(i, j, k) = dist(rng);
                up(i, j, k) = dist(rng);
                di(i, j, k) = 3.5 + dist(rng);
                rhs(i, j, k) = 4.0 * dist(rng);
            }

    gpusim::port_tridiagonal_columns(lo, di, up, rhs, sol, 8, 4);

    // Reference: the scalar Thomas solver per column.
    std::vector<double> l(16), d(16), u(16), r(16), scratch(16);
    for (Index j = 0; j < ext.y; ++j) {
        for (Index i = 0; i < ext.x; ++i) {
            for (Index k = 0; k < 16; ++k) {
                l[static_cast<std::size_t>(k)] = lo(i, j, k);
                d[static_cast<std::size_t>(k)] = di(i, j, k);
                u[static_cast<std::size_t>(k)] = up(i, j, k);
                r[static_cast<std::size_t>(k)] = rhs(i, j, k);
            }
            solve_tridiagonal<double>(l, d, u, r, scratch);
            for (Index k = 0; k < 16; ++k) {
                EXPECT_EQ(sol(i, j, k), r[static_cast<std::size_t>(k)])
                    << i << "," << j << "," << k;
            }
        }
    }
}

}  // namespace
}  // namespace asuca
