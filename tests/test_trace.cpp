// Trace recorder + metrics registry: per-thread ring-buffer semantics
// (concurrent emission, wraparound, disabled-mode zero effect), the
// Chrome trace-event export, and — the property the whole subsystem
// hangs on — that turning tracing and metrics ON changes nothing about
// the numerics: every overlap mode stays bitwise identical to the
// lockstep reference with spans and hooks firing throughout.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/multidomain.hpp"
#include "src/core/diagnostics.hpp"
#include "src/core/initial.hpp"
#include "src/io/json.hpp"
#include "src/observability/metrics.hpp"
#include "src/observability/trace.hpp"

namespace asuca::obs {
namespace {

/// Every test leaves the global recorder/registry the way it found it:
/// disabled, with no retained events.
struct TraceGuard {
    ~TraceGuard() {
        TraceRecorder::global().disable();
        TraceRecorder::global().clear();
        MetricsRegistry::global().disable();
        MetricsRegistry::global().reset();
    }
};

TEST(Trace, ConcurrentEmissionKeepsThreadsApart) {
    TraceGuard guard;
    auto& rec = TraceRecorder::global();
    rec.enable(1024);

    constexpr int kThreads = 4;
    constexpr int kSpans = 32;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            name_this_thread("emitter " + std::to_string(t));
            for (int n = 0; n < kSpans; ++n) {
                TraceSpan span("work", t, "test");
            }
            trace_instant("done", t, "test");
        });
    }
    for (auto& th : threads) th.join();
    rec.disable();

    const auto events = rec.events();
    std::set<std::uint32_t> tids;
    int spans = 0, instants = 0;
    for (const auto& e : events) {
        if (std::string(e.cat) != "test") continue;
        tids.insert(e.tid);
        if (e.kind == TraceKind::Span) ++spans;
        if (e.kind == TraceKind::Instant) ++instants;
        EXPECT_GE(e.t_begin_ns, 0);
        EXPECT_GE(e.dur_ns, 0);
    }
    EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
    EXPECT_EQ(spans, kThreads * kSpans);
    EXPECT_EQ(instants, kThreads);
    EXPECT_EQ(rec.dropped(), 0u);
}

TEST(Trace, RingWraparoundKeepsNewestEvents) {
    TraceGuard guard;
    auto& rec = TraceRecorder::global();
    rec.enable(/*capacity_per_thread=*/8);
    for (int n = 0; n < 20; ++n) {
        TraceSpan span(("span" + std::to_string(n)).c_str(), "wrap");
    }
    rec.disable();

    std::vector<std::string> names;
    for (const auto& e : rec.events()) {
        if (std::string(e.cat) == "wrap") names.push_back(e.name);
    }
    // The newest 8 of 20, oldest-first; the rest counted as dropped.
    ASSERT_EQ(names.size(), 8u);
    for (int n = 0; n < 8; ++n) {
        EXPECT_EQ(names[static_cast<std::size_t>(n)],
                  "span" + std::to_string(12 + n));
    }
    EXPECT_EQ(rec.dropped(), 12u);
}

TEST(Trace, DisabledModeEmitsAndRegistersNothing) {
    TraceGuard guard;
    auto& rec = TraceRecorder::global();
    ASSERT_FALSE(trace_enabled());
    const std::size_t threads_before = rec.thread_count();
    const std::size_t events_before = rec.events().size();

    // Spans, instants and thread naming from a brand-new thread: with
    // tracing disabled none of it may register a buffer or emit.
    std::thread([&] {
        name_this_thread("ghost");
        for (int n = 0; n < 100; ++n) {
            TraceSpan span("invisible", "off");
            trace_instant("also invisible", "off");
        }
    }).join();

    EXPECT_EQ(rec.thread_count(), threads_before);
    EXPECT_EQ(rec.events().size(), events_before);
}

TEST(Trace, NestedSpansRecordDepth) {
    TraceGuard guard;
    auto& rec = TraceRecorder::global();
    rec.enable(64);
    {
        TraceSpan outer("outer", "nest");
        {
            TraceSpan inner("inner", "nest");
        }
    }
    rec.disable();
    std::uint16_t outer_depth = 99, inner_depth = 99;
    for (const auto& e : rec.events()) {
        if (std::string(e.name) == "outer") outer_depth = e.depth;
        if (std::string(e.name) == "inner") inner_depth = e.depth;
    }
    EXPECT_EQ(outer_depth, 0);
    EXPECT_EQ(inner_depth, 1);
}

TEST(Trace, ChromeTraceExportParsesAndCarriesEvents) {
    TraceGuard guard;
    auto& rec = TraceRecorder::global();
    rec.enable(256);
    name_this_thread("main driver");
    {
        TraceSpan span("exported_span", "export");
    }
    trace_instant("exported_instant", "export");
    rec.disable();

    // Round-trip through the serializer: the export must be valid JSON
    // in the Chrome trace-event envelope.
    const io::JsonValue doc = io::json_parse(rec.chrome_trace().dump());
    const auto& events = doc.at("traceEvents").as_array();
    bool saw_span = false, saw_instant = false, saw_name = false;
    for (const auto& e : events) {
        const std::string ph = e.at("ph").as_string();
        if (ph == "X" && e.at("name").as_string() == "exported_span") {
            saw_span = true;
            EXPECT_EQ(e.at("cat").as_string(), "export");
            EXPECT_GE(e.at("dur").as_number(), 0.0);
            EXPECT_TRUE(e.has("ts"));
            EXPECT_TRUE(e.has("tid"));
        }
        if (ph == "i" && e.at("name").as_string() == "exported_instant") {
            saw_instant = true;
            EXPECT_EQ(e.at("s").as_string(), "t");
        }
        if (ph == "M" && e.at("name").as_string() == "thread_name") {
            saw_name |= e.at("args").at("name").as_string() == "main driver";
        }
    }
    EXPECT_TRUE(saw_span);
    EXPECT_TRUE(saw_instant);
    EXPECT_TRUE(saw_name);
}

TEST(Metrics, CountersGaugesHistogramsRoundTrip) {
    TraceGuard guard;
    auto& reg = MetricsRegistry::global();
    reg.enable();
    auto& c = reg.counter("test.counter");
    auto& g = reg.gauge("test.gauge");
    auto& h = reg.histogram("test.histogram");
    c.add(3);
    c.add();
    g.set(2.5);
    h.observe(1.0);
    h.observe(3.0);
    reg.disable();
    // Disabled updates are dropped.
    c.add(100);
    h.observe(1000.0);

    EXPECT_EQ(c.value(), 4u);
    EXPECT_EQ(g.value(), 2.5);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.mean(), 2.0);
    EXPECT_EQ(h.max(), 3.0);

    const io::JsonValue snap =
        io::json_parse(reg.snapshot().dump());
    EXPECT_EQ(snap.at("test.counter").as_number(), 4.0);
    EXPECT_EQ(snap.at("test.gauge").as_number(), 2.5);
    EXPECT_EQ(snap.at("test.histogram").at("count").as_number(), 2.0);
    EXPECT_EQ(snap.at("test.histogram").at("mean").as_number(), 2.0);
}

// ---------------------------------------------------------------------
// The load-bearing property: observability must be a pure observer.
// ---------------------------------------------------------------------

GridSpec make_global() {
    GridSpec s;
    s.nx = 24;
    s.ny = 12;
    s.nz = 10;
    s.dx = 1000.0;
    s.dy = 1000.0;
    s.ztop = 10000.0;
    s.terrain = bell_mountain(350.0, 3000.0, 12000.0, 6000.0);
    return s;
}

TimeStepperConfig make_stepper_cfg() {
    TimeStepperConfig cfg;
    cfg.dt = 4.0;
    cfg.n_short_steps = 6;
    cfg.diffusion.kh = 10.0;
    cfg.diffusion.kv = 1.0;
    cfg.sponge.z_start = 8000.0;
    return cfg;
}

class TraceBitwise : public ::testing::TestWithParam<cluster::OverlapMode> {};

TEST_P(TraceBitwise, TracingOnIsBitwiseIdenticalToTracingOff) {
    TraceGuard guard;
    const auto spec = make_global();
    const auto cfg = make_stepper_cfg();
    const auto species = SpeciesSet::warm_rain();
    constexpr int kSteps = 2;

    Grid<double> grid(spec);
    State<double> initial(grid, species);
    initialize_hydrostatic(grid, AtmosphereProfile::constant_n(292.0, 0.011),
                           8.0, 3.0, initial);
    set_relative_humidity(
        grid, [](double z) { return z < 2000.0 ? 0.8 : 0.3; }, initial);

    cluster::MultiDomainConfig md;
    md.overlap = GetParam();
    md.threads_per_rank = 2;

    // Reference: instrumentation disabled (the production default).
    State<double> ref(grid, species);
    {
        cluster::MultiDomainRunner<double> runner(spec, 2, 2, species, cfg,
                                                  md);
        runner.scatter(initial);
        for (int n = 0; n < kSteps; ++n) runner.step();
        runner.gather(ref);
    }

    // Same run with tracing + metrics recording and step hooks attached.
    TraceRecorder::global().enable(4096);
    MetricsRegistry::global().enable();
    State<double> got(grid, species);
    int hook_fired = 0;
    {
        cluster::MultiDomainRunner<double> runner(spec, 2, 2, species, cfg,
                                                  md);
        runner.step_hooks().add(
            [&](cluster::MultiDomainRunner<double>&) { ++hook_fired; });
        runner.scatter(initial);
        for (int n = 0; n < kSteps; ++n) runner.step();
        runner.gather(got);
    }
    TraceRecorder::global().disable();
    MetricsRegistry::global().disable();

    EXPECT_EQ(hook_fired, kSteps);
    EXPECT_EQ(max_abs_diff(ref.rho, got.rho), 0.0);
    EXPECT_EQ(max_abs_diff(ref.rhou, got.rhou), 0.0);
    EXPECT_EQ(max_abs_diff(ref.rhov, got.rhov), 0.0);
    EXPECT_EQ(max_abs_diff(ref.rhow, got.rhow), 0.0);
    EXPECT_EQ(max_abs_diff(ref.rhotheta, got.rhotheta), 0.0);
    EXPECT_EQ(max_abs_diff(ref.p, got.p), 0.0);
    for (std::size_t n = 0; n < species.count(); ++n) {
        EXPECT_EQ(max_abs_diff(ref.tracers[n], got.tracers[n]), 0.0);
    }

    // The traced run must actually have traced: rank-worker spans in the
    // concurrent modes, stepper-phase spans in lockstep.
    bool saw_phase = false;
    for (const auto& e : TraceRecorder::global().events()) {
        if (std::string(e.cat) == "phase" || std::string(e.cat) == "halo") {
            saw_phase = true;
            break;
        }
    }
    EXPECT_TRUE(saw_phase);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, TraceBitwise,
    ::testing::Values(cluster::OverlapMode::None,
                      cluster::OverlapMode::Split,
                      cluster::OverlapMode::SplitPipeline),
    [](const auto& info) {
        switch (info.param) {
            case cluster::OverlapMode::None: return std::string("none");
            case cluster::OverlapMode::Split: return std::string("split");
            case cluster::OverlapMode::SplitPipeline:
                return std::string("pipeline");
        }
        return std::string("unknown");
    });

}  // namespace
}  // namespace asuca::obs
