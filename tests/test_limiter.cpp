// Property tests for the Koren flux limiter (paper ref [14]): TVD bounds,
// third-order consistency, and monotonicity of the limited face values.
#include <gtest/gtest.h>

#include <random>

#include "src/core/limiter.hpp"

namespace asuca {
namespace {

TEST(KorenLimiter, KnownValues) {
    // psi(r) = max(0, min(2r, min((1+2r)/3, 2)))
    EXPECT_DOUBLE_EQ(koren_psi(0.0), 0.0);
    EXPECT_DOUBLE_EQ(koren_psi(-3.0), 0.0);       // upwind at extrema
    EXPECT_DOUBLE_EQ(koren_psi(1.0), 1.0);        // 2nd-order consistency
    EXPECT_DOUBLE_EQ(koren_psi(0.25), 0.5);       // 2r branch
    EXPECT_DOUBLE_EQ(koren_psi(1.0 / 4), 0.5);
    EXPECT_DOUBLE_EQ(koren_psi(2.0), 5.0 / 3.0);  // (1+2r)/3 branch
    EXPECT_DOUBLE_EQ(koren_psi(10.0), 2.0);       // capped at 2
}

class KorenPsiSweep : public ::testing::TestWithParam<double> {};

TEST_P(KorenPsiSweep, StaysInsideTvdRegion) {
    const double r = GetParam();
    const double psi = koren_psi(r);
    // Sweby TVD region: 0 <= psi <= min(2r, 2) for r > 0, psi = 0 else.
    EXPECT_GE(psi, 0.0);
    EXPECT_LE(psi, 2.0);
    if (r > 0) {
        EXPECT_LE(psi, 2.0 * r + 1e-14);
    } else {
        EXPECT_DOUBLE_EQ(psi, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(RatioSweep, KorenPsiSweep,
                         ::testing::Values(-10.0, -1.0, -0.1, 0.0, 0.05, 0.2,
                                           0.5, 1.0, 1.5, 2.0, 3.0, 8.0,
                                           100.0));

TEST(KorenLimiter, ThirdOrderOnSmoothData) {
    // On smooth data the face value approaches the third-order (kappa=1/3)
    // reconstruction: phi_f = phi_u + (d-u)/3 + (u-uu)/6.
    auto f = [](double x) { return 1.0 + 0.1 * x + 0.02 * x * x; };
    const double uu = f(-1.5), u = f(-0.5), d = f(0.5);
    const double exact = koren_face_value(uu, u, d);
    const double k3 = u + (d - u) / 3.0 + (u - uu) / 6.0;
    EXPECT_NEAR(exact, k3, 1e-12);
}

TEST(KorenLimiter, FlatFieldReturnsUpwindValue) {
    EXPECT_DOUBLE_EQ(koren_face_value(5.0, 5.0, 5.0), 5.0);
    // Degenerate denominator (d == u) must not divide by zero.
    EXPECT_DOUBLE_EQ(koren_face_value(2.0, 5.0, 5.0), 5.0);
}

TEST(KorenLimiter, FaceValueBoundedByAdjacentCells) {
    // TVD property: the limited face value never leaves the interval
    // spanned by the two adjacent cells (no new extrema from the flux).
    std::mt19937 rng(42);
    std::uniform_real_distribution<double> dist(-10.0, 10.0);
    for (int trial = 0; trial < 2000; ++trial) {
        const double uu = dist(rng), u = dist(rng), d = dist(rng);
        const double face = koren_face_value(uu, u, d);
        const double lo = std::min(u, d), hi = std::max(u, d);
        EXPECT_GE(face, lo - 1e-12);
        EXPECT_LE(face, hi + 1e-12);
    }
}

TEST(KorenLimiter, UpwindSelectionFollowsVelocitySign) {
    // vel > 0: reconstruct from the left stencil; vel < 0: mirrored.
    const double m2 = 0.0, m1 = 1.0, p0 = 3.0, p1 = 10.0;
    const double right = limited_face_value(1.0, m2, m1, p0, p1);
    const double left = limited_face_value(-1.0, m2, m1, p0, p1);
    EXPECT_EQ(right, koren_face_value(m2, m1, p0));
    EXPECT_EQ(left, koren_face_value(p1, p0, m1));
    EXPECT_NE(right, left);
}

TEST(KorenLimiter, SymmetricUnderMirror) {
    // Mirroring the stencil and the velocity gives the same face value.
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> dist(-5.0, 5.0);
    for (int trial = 0; trial < 500; ++trial) {
        const double m2 = dist(rng), m1 = dist(rng), p0 = dist(rng),
                     p1 = dist(rng);
        EXPECT_DOUBLE_EQ(limited_face_value(2.0, m2, m1, p0, p1),
                         limited_face_value(-2.0, p1, p0, m1, m2));
    }
}

}  // namespace
}  // namespace asuca
