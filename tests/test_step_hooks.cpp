// StepHooks: ordered multi-subscriber semantics, removal by handle, and
// the deprecated single-observer shims on both drivers (these are the
// shim's own tests — everything else in the repo subscribes through
// step_hooks() directly).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cluster/multidomain.hpp"
#include "src/core/scenarios.hpp"
#include "src/observability/step_hooks.hpp"

namespace asuca {
namespace {

TEST(StepHooks, FiresInSubscriptionOrder) {
    obs::StepHooks<int> hooks;
    std::vector<std::string> order;
    hooks.add([&](int v) { order.push_back("a" + std::to_string(v)); });
    hooks.add([&](int v) { order.push_back("b" + std::to_string(v)); });
    hooks.add([&](int v) { order.push_back("c" + std::to_string(v)); });
    hooks.notify(1);
    hooks.notify(2);
    EXPECT_EQ(order, (std::vector<std::string>{"a1", "b1", "c1", "a2", "b2",
                                               "c2"}));
}

TEST(StepHooks, RemoveByHandleKeepsOthersFiring) {
    obs::StepHooks<> hooks;
    int a = 0, b = 0, c = 0;
    const auto ha = hooks.add([&] { ++a; });
    const auto hb = hooks.add([&] { ++b; });
    hooks.add([&] { ++c; });
    EXPECT_EQ(hooks.size(), 3u);

    EXPECT_TRUE(hooks.remove(hb));
    hooks.notify();
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 0);
    EXPECT_EQ(c, 1);

    // Unknown / already-removed handles are rejected, not UB.
    EXPECT_FALSE(hooks.remove(hb));
    EXPECT_FALSE(hooks.remove(0));
    EXPECT_TRUE(hooks.remove(ha));
    hooks.notify();
    EXPECT_EQ(a, 1);
    EXPECT_EQ(c, 2);
}

TEST(StepHooks, HandlesAreNeverReused) {
    obs::StepHooks<> hooks;
    const auto h1 = hooks.add([] {});
    EXPECT_TRUE(hooks.remove(h1));
    const auto h2 = hooks.add([] {});
    EXPECT_NE(h1, h2);
    EXPECT_NE(h2, 0u);
}

TEST(StepHooks, EmptyFunctionHoldsSlotButNeverFires) {
    obs::StepHooks<> hooks;
    const auto h = hooks.add(obs::StepHooks<>::Fn{});
    hooks.notify();  // must not throw on the empty std::function
    EXPECT_EQ(hooks.size(), 1u);
    EXPECT_TRUE(hooks.remove(h));
    EXPECT_TRUE(hooks.empty());
}

// The deprecated shims must preserve the legacy single-slot semantics
// (set replaces, nullptr detaches) without evicting other subscribers.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(StepHooks, StepperShimReplacesAndDetaches) {
    auto cfg = scenarios::warm_bubble_config<double>(8, 8, 8);
    AsucaModel<double> model(cfg);
    scenarios::init_warm_bubble(model);

    int direct = 0, shim_a = 0, shim_b = 0;
    model.stepper().step_hooks().add([&](const State<double>&) { ++direct; });

    model.stepper().set_step_observer(
        [&](const State<double>&) { ++shim_a; });
    model.step();
    // Set REPLACES the shim's subscription (legacy single-slot behavior).
    model.stepper().set_step_observer(
        [&](const State<double>&) { ++shim_b; });
    model.step();
    // nullptr DETACHES it; the direct subscriber keeps firing.
    model.stepper().set_step_observer(nullptr);
    model.step();

    EXPECT_EQ(shim_a, 1);
    EXPECT_EQ(shim_b, 1);
    EXPECT_EQ(direct, 3);
}

TEST(StepHooks, RunnerShimReplacesAndDetaches) {
    GridSpec spec;
    spec.nx = 16;
    spec.ny = 8;
    spec.nz = 8;
    TimeStepperConfig scfg;
    scfg.dt = 1.0;
    scfg.n_short_steps = 2;
    const SpeciesSet species = SpeciesSet::dry();
    Grid<double> grid(spec);
    State<double> global(grid, species);
    initialize_hydrostatic(grid, AtmosphereProfile::constant_n(292.0, 0.011),
                           0.0, 0.0, global);

    cluster::MultiDomainRunner<double> runner(spec, 2, 1, species, scfg);
    runner.scatter(global);

    int direct = 0, shim = 0;
    runner.step_hooks().add(
        [&](cluster::MultiDomainRunner<double>&) { ++direct; });
    runner.set_step_observer(
        [&](cluster::MultiDomainRunner<double>&) { ++shim; });
    runner.step();
    runner.set_step_observer(nullptr);
    runner.step();

    EXPECT_EQ(shim, 1);
    EXPECT_EQ(direct, 2);
}

#pragma GCC diagnostic pop

}  // namespace
}  // namespace asuca
