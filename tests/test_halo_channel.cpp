// Unit tests for the asynchronous halo channels backing the concurrent
// multi-domain executor: SPSC double-buffering, cross-thread ordering,
// and the pack/unpack strip geometry (including the x-then-y corner
// resolution) of HaloExchanger.
#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "src/cluster/halo_channel.hpp"
#include "src/field/array3.hpp"

namespace asuca::cluster {
namespace {

TEST(HaloChannel, RoundTripsOneMessage) {
    HaloChannel<double> ch;
    auto& buf = ch.begin_post(3);
    buf[0] = 1.5;
    buf[1] = -2.0;
    buf[2] = 7.25;
    ch.finish_post();
    EXPECT_EQ(ch.in_flight(), 1u);

    const auto& msg = ch.begin_receive();
    ASSERT_EQ(msg.size(), 3u);
    EXPECT_EQ(msg[0], 1.5);
    EXPECT_EQ(msg[1], -2.0);
    EXPECT_EQ(msg[2], 7.25);
    ch.finish_receive();
    EXPECT_EQ(ch.in_flight(), 0u);
}

TEST(HaloChannel, DoubleBufferReusesSlotsAcrossManyMessages) {
    HaloChannel<double> ch;
    // Keep the channel at its slot capacity, then drain one-for-one: the
    // two slots must be reused without mixing message contents, and
    // message sizes may change between reuses.
    auto post = [&](double tag, std::size_t size) {
        auto& buf = ch.begin_post(size);
        for (std::size_t i = 0; i < size; ++i) {
            buf[i] = tag + static_cast<double>(i);
        }
        ch.finish_post();
    };
    auto expect_receive = [&](double tag, std::size_t size) {
        const auto& msg = ch.begin_receive();
        ASSERT_EQ(msg.size(), size);
        for (std::size_t i = 0; i < size; ++i) {
            EXPECT_EQ(msg[i], tag + static_cast<double>(i));
        }
        ch.finish_receive();
    };

    post(100.0, 4);
    post(200.0, 2);
    EXPECT_EQ(ch.in_flight(), HaloChannel<double>::kSlots);
    for (int m = 2; m < 7; ++m) {
        expect_receive(100.0 * (m - 1), static_cast<std::size_t>(m % 3 + 2));
        post(100.0 * (m + 1), static_cast<std::size_t>((m + 2) % 3 + 2));
    }
    expect_receive(600.0, 3);
    expect_receive(700.0, 4);
    EXPECT_EQ(ch.in_flight(), 0u);
}

TEST(HaloChannel, CrossThreadMessagesArriveCompleteAndInOrder) {
    constexpr int kMessages = 500;
    constexpr std::size_t kSize = 64;
    HaloChannel<double> ch;
    std::thread producer([&] {
        for (int m = 0; m < kMessages; ++m) {
            auto& buf = ch.begin_post(kSize);
            for (std::size_t i = 0; i < kSize; ++i) {
                buf[i] = static_cast<double>(m) * 1000.0 +
                         static_cast<double>(i);
            }
            ch.finish_post();
        }
    });
    // The consumer deliberately lags so the producer hits the slot-count
    // backpressure path; every message must still arrive whole.
    int bad = 0;
    for (int m = 0; m < kMessages; ++m) {
        const auto& msg = ch.begin_receive();
        if (msg.size() != kSize) ++bad;
        for (std::size_t i = 0; i < kSize; ++i) {
            if (msg[i] != static_cast<double>(m) * 1000.0 +
                              static_cast<double>(i)) {
                ++bad;
            }
        }
        ch.finish_receive();
    }
    producer.join();
    EXPECT_EQ(bad, 0);
    EXPECT_EQ(ch.in_flight(), 0u);
}

// ---------------------------------------------------------------------
// HaloExchanger strip geometry on a 2x2 periodic decomposition.
// ---------------------------------------------------------------------

constexpr Index kNxl = 8, kNyl = 6, kNz = 4, kHalo = 3;

double pattern(Index gi, Index gj, Index k, Index gnx, Index gny) {
    const Index wi = ((gi % gnx) + gnx) % gnx;
    const Index wj = ((gj % gny) + gny) % gny;
    return 10000.0 * static_cast<double>(wi) +
           100.0 * static_cast<double>(wj) + static_cast<double>(k);
}

/// Build one rank-local field of a px x py decomposition whose interior
/// carries the global pattern and whose halos are poisoned. `sx/sy` mark
/// face-staggered axes (the shared face belongs to both ranks).
Array3<double> make_rank_field(Index rx, Index ry, Index px, Index py,
                               Index sx, Index sy) {
    Array3<double> a({kNxl + sx, kNyl + sy, kNz}, kHalo, Layout::XZY,
                     -99999.0);
    const Index gnx = px * kNxl, gny = py * kNyl;
    for (Index j = 0; j < kNyl + sy; ++j)
        for (Index k = -kHalo; k < kNz + kHalo; ++k)
            for (Index i = 0; i < kNxl + sx; ++i)
                a(i, j, k) = pattern(rx * kNxl + i, ry * kNyl + j, k, gnx,
                                     gny);
    return a;
}

/// Drive a full exchange of one field family across all ranks in the
/// four bulk phases (all posts, then all receives, per direction) and
/// verify every halo cell — corners included — equals the periodic wrap
/// of the global pattern, exactly what the lockstep runner produces.
void check_exchanged_halos(Index sx, Index sy) {
    const Index px = 2, py = 2;
    HaloExchanger<double> ex(px, py, kNxl, kNyl);
    std::vector<Array3<double>> fields;
    for (Index ry = 0; ry < py; ++ry)
        for (Index rx = 0; rx < px; ++rx)
            fields.push_back(make_rank_field(rx, ry, px, py, sx, sy));

    for (Index r = 0; r < px * py; ++r) ex.post_x(r, fields[size_t(r)]);
    for (Index r = 0; r < px * py; ++r) ex.recv_x(r, fields[size_t(r)]);
    // The y strips span the full padded x range, so the x halos filled
    // above propagate into the corners.
    for (Index r = 0; r < px * py; ++r) ex.post_y(r, fields[size_t(r)]);
    for (Index r = 0; r < px * py; ++r) ex.recv_y(r, fields[size_t(r)]);

    const Index gnx = px * kNxl, gny = py * kNyl;
    for (Index r = 0; r < px * py; ++r) {
        const auto& a = fields[size_t(r)];
        const Index rx = r % px, ry = r / px;
        for (Index j = -kHalo; j < kNyl + sy + kHalo; ++j)
            for (Index k = -kHalo; k < kNz + kHalo; ++k)
                for (Index i = -kHalo; i < kNxl + sx + kHalo; ++i)
                    ASSERT_EQ(a(i, j, k),
                              pattern(rx * kNxl + i, ry * kNyl + j, k, gnx,
                                      gny))
                        << "rank " << r << " at (" << i << "," << j << ","
                        << k << ")";
    }
}

TEST(HaloExchanger, CenteredFieldHalosEqualPeriodicWrap) {
    check_exchanged_halos(0, 0);
}

TEST(HaloExchanger, XStaggeredFieldHalosEqualPeriodicWrap) {
    check_exchanged_halos(1, 0);
}

TEST(HaloExchanger, YStaggeredFieldHalosEqualPeriodicWrap) {
    check_exchanged_halos(0, 1);
}

TEST(HaloExchanger, SingleRankColumnWrapsOntoItself) {
    // px = 1: a rank's west and east neighbors are itself; the channels
    // must still deliver the periodic wrap (the SPSC producer and
    // consumer are the same thread here).
    const Index px = 1, py = 2;
    HaloExchanger<double> ex(px, py, kNxl, kNyl);
    std::vector<Array3<double>> fields;
    for (Index ry = 0; ry < py; ++ry)
        fields.push_back(make_rank_field(0, ry, px, py, 0, 0));

    for (Index r = 0; r < px * py; ++r) ex.post_x(r, fields[size_t(r)]);
    for (Index r = 0; r < px * py; ++r) ex.recv_x(r, fields[size_t(r)]);
    for (Index r = 0; r < px * py; ++r) ex.post_y(r, fields[size_t(r)]);
    for (Index r = 0; r < px * py; ++r) ex.recv_y(r, fields[size_t(r)]);

    const Index gnx = kNxl, gny = py * kNyl;
    for (Index r = 0; r < px * py; ++r) {
        const auto& a = fields[size_t(r)];
        for (Index j = -kHalo; j < kNyl + kHalo; ++j)
            for (Index i = -kHalo; i < kNxl + kHalo; ++i)
                ASSERT_EQ(a(i, j, 0),
                          pattern(i, (r / px) * kNyl + j, 0, gnx, gny));
    }
}

}  // namespace
}  // namespace asuca::cluster
