// Tests for the lateral boundary-condition halo fills.
#include <gtest/gtest.h>

#include "src/core/boundary.hpp"

namespace asuca {
namespace {

Array3<double> numbered(Int3 ext, Index halo, Layout layout) {
    Array3<double> a(ext, halo, layout, -999.0);
    for (Index j = 0; j < ext.y; ++j)
        for (Index k = 0; k < ext.z; ++k)
            for (Index i = 0; i < ext.x; ++i)
                a(i, j, k) = 100.0 * static_cast<double>(i) +
                             10.0 * static_cast<double>(j) +
                             static_cast<double>(k);
    return a;
}

class BoundaryLayouts : public ::testing::TestWithParam<Layout> {};

TEST_P(BoundaryLayouts, PeriodicWrapsCenteredArray) {
    auto a = numbered({6, 5, 4}, 2, GetParam());
    apply_lateral_bc(a, LateralBc::Periodic, 6, 5);
    for (Index k = 0; k < 4; ++k) {
        for (Index j = 0; j < 5; ++j) {
            EXPECT_EQ(a(-1, j, k), a(5, j, k));
            EXPECT_EQ(a(-2, j, k), a(4, j, k));
            EXPECT_EQ(a(6, j, k), a(0, j, k));
            EXPECT_EQ(a(7, j, k), a(1, j, k));
        }
        for (Index i = 0; i < 6; ++i) {
            EXPECT_EQ(a(i, -1, k), a(i, 4, k));
            EXPECT_EQ(a(i, 5, k), a(i, 0, k));
        }
    }
}

TEST_P(BoundaryLayouts, PeriodicFillsCornersConsistently) {
    auto a = numbered({6, 5, 3}, 2, GetParam());
    apply_lateral_bc(a, LateralBc::Periodic, 6, 5);
    // Corner halo (-1,-1) must equal the opposite interior corner (5,4).
    EXPECT_EQ(a(-1, -1, 1), a(5, 4, 1));
    EXPECT_EQ(a(7, 6, 2), a(1, 1, 2));
    EXPECT_EQ(a(-2, 5, 0), a(4, 0, 0));
}

TEST_P(BoundaryLayouts, PeriodicStaggeredDuplicatesFacePlane) {
    // x-face array of extent nx+1 with period nx: face nx aliases face 0.
    auto a = numbered({7, 5, 3}, 2, GetParam());  // nx=6 -> extent 7
    apply_lateral_bc(a, LateralBc::Periodic, 6, 5);
    for (Index j = 0; j < 5; ++j)
        for (Index k = 0; k < 3; ++k) {
            EXPECT_EQ(a(6, j, k), a(0, j, k));
            EXPECT_EQ(a(-1, j, k), a(5, j, k));
        }
}

TEST_P(BoundaryLayouts, ZeroGradientCopiesEdge) {
    auto a = numbered({6, 5, 3}, 2, GetParam());
    apply_lateral_bc(a, LateralBc::ZeroGradient, 6, 5);
    for (Index k = 0; k < 3; ++k) {
        for (Index j = 0; j < 5; ++j) {
            EXPECT_EQ(a(-1, j, k), a(0, j, k));
            EXPECT_EQ(a(-2, j, k), a(0, j, k));
            EXPECT_EQ(a(7, j, k), a(5, j, k));
        }
        EXPECT_EQ(a(2, -2, k), a(2, 0, k));
        EXPECT_EQ(a(2, 6, k), a(2, 4, k));
        // Corners: x fill then y fill leaves the edge value.
        EXPECT_EQ(a(-2, -2, k), a(0, 0, k));
    }
}

INSTANTIATE_TEST_SUITE_P(BothLayouts, BoundaryLayouts,
                         ::testing::Values(Layout::ZXY, Layout::XZY),
                         [](const auto& info) {
                             return info.param == Layout::ZXY ? "kij" : "xzy";
                         });

TEST(Boundary, PeriodicIsIdempotent) {
    auto a = numbered({8, 6, 3}, 3, Layout::XZY);
    apply_lateral_bc(a, LateralBc::Periodic, 8, 6);
    auto b = a;
    apply_lateral_bc(a, LateralBc::Periodic, 8, 6);
    EXPECT_EQ(max_abs_diff(a, b), 0.0);
    // Halos too.
    for (Index j = -3; j < 9; ++j)
        for (Index k = 0; k < 3; ++k)
            for (Index i = -3; i < 11; ++i)
                EXPECT_EQ(a(i, j, k), b(i, j, k));
}

}  // namespace
}  // namespace asuca
