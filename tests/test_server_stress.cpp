// Concurrency stress harness for the forecast service (and, through it,
// HaloChannel + TaskLayer under oversubscription). Three load-bearing
// claims, each asserted bitwise:
//
//   1. An 8-member ensemble forked from ONE checkpoint and run
//      concurrently on a shared worker pool is per-member bitwise
//      identical to running each member serially in isolation.
//   2. M concurrent decomposed runners x N ranks each — far more
//      resident rank workers than cores — complete without deadlock or
//      lost halo messages, and every runner's answer is bitwise stable
//      across repetitions (and equal to the lockstep serial answer).
//   3. Under 2x sustained overload the server DEGRADES (shorter horizon,
//      coarser grid) instead of shedding: every request completes.
//
// The ServerSoak suite repeats the churn at higher iteration counts; it
// carries the `slow` ctest label and reads ASUCA_SOAK_ITERS so the cron
// CI job can turn the crank harder than the tier-1 gate does.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/core/diagnostics.hpp"
#include "src/server/forecast_server.hpp"

namespace asuca::server {
namespace {

void expect_bitwise(const State<double>& a, const State<double>& b) {
    EXPECT_EQ(max_abs_diff(a.rho, b.rho), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhou, b.rhou), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhov, b.rhov), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhow, b.rhow), 0.0);
    EXPECT_EQ(max_abs_diff(a.rhotheta, b.rhotheta), 0.0);
    EXPECT_EQ(max_abs_diff(a.p, b.p), 0.0);
    ASSERT_EQ(a.tracers.size(), b.tracers.size());
    for (std::size_t n = 0; n < a.tracers.size(); ++n) {
        EXPECT_EQ(max_abs_diff(a.tracers[n], b.tracers[n]), 0.0);
    }
}

ScenarioSpec small_spec(int steps = 2) {
    ScenarioSpec s;
    s.scenario = "warm_bubble";
    s.nx = 16;
    s.ny = 16;
    s.nz = 12;
    s.steps = steps;
    return s;
}

/// Wrap a spec the way an out-of-process client's frame would arrive —
/// every in-repo caller speaks the wire envelope API.
wire::ForecastRequestV1 envelope(const ScenarioSpec& spec) {
    wire::ForecastRequestV1 req;
    req.spec = spec;
    return req;
}

int soak_iters(int fallback) {
    if (const char* env = std::getenv("ASUCA_SOAK_ITERS")) {
        const int n = std::atoi(env);
        if (n > 0) return n;
    }
    return fallback;
}

// The acceptance-criterion run: fork one analysis checkpoint into 8
// perturbed members, schedule them concurrently on 4 shared workers, and
// demand bitwise identity with each member executed serially, alone.
TEST(ServerStress, EightMemberEnsembleMatchesSerialBitwise) {
    const ScenarioSpec base_scenario = canonicalize(small_spec());

    // The "analysis": one model integrated a little, captured once.
    AsucaModel<double> analysis(build_config(base_scenario));
    init_model(analysis, base_scenario);
    analysis.run(2);

    EnsembleRequest req;
    req.base = base_scenario;
    req.base.warm_start = "analysis";
    req.base.steps = 2;
    req.n_members = 8;
    req.seed = 2026;
    req.amplitude = 1.0e-3;

    // Serial baselines: each member alone, through the same executor the
    // server workers call — no server, no concurrency, nothing shared.
    CheckpointStore store;
    store.capture("analysis", analysis);
    const auto blob = store.get("analysis");
    ASSERT_NE(blob, nullptr);
    std::vector<ForecastResult> serial;
    for (const ScenarioSpec& m : expand_members(req)) {
        serial.push_back(run_forecast(canonicalize(m), blob, true));
        ASSERT_TRUE(serial.back().ok()) << serial.back().error;
    }

    // Members must actually differ — otherwise "bitwise identical" would
    // be vacuous.
    EXPECT_NE(serial[0].fingerprint, serial[1].fingerprint);

    // Concurrent: all 8 members in flight across 4 workers at once.
    ServerConfig cfg;
    cfg.n_workers = 4;
    cfg.queue_capacity = 64;  // deep enough that nothing degrades
    cfg.keep_state = true;
    ForecastServer server(cfg);
    server.checkpoints().capture("analysis", analysis);
    auto handles = server.submit_ensemble(req);
    ASSERT_EQ(handles.size(), 8u);
    for (std::size_t m = 0; m < handles.size(); ++m) {
        const ForecastResult& res = handles[m].wait();
        ASSERT_TRUE(res.ok()) << "member " << m << ": " << res.error;
        EXPECT_EQ(res.degrade_level, 0) << "member " << m;
        ASSERT_NE(res.state, nullptr);
        EXPECT_EQ(res.fingerprint, serial[m].fingerprint)
            << "member " << m << " diverged under concurrency";
        expect_bitwise(*serial[m].state, *res.state);
    }
    server.shutdown();
    EXPECT_EQ(server.stats().completed, 8u);
    EXPECT_EQ(server.stats().failed, 0u);
    EXPECT_EQ(server.stats().shed, 0u);
}

// Satellite: HaloChannel + TaskLayer oversubscription. Four concurrent
// 2x2 split-mode runners make 16 resident rank workers (plus the client
// threads) on whatever cores this machine has — typically several times
// oversubscribed. No deadlock, no lost halo messages (any loss breaks
// the bitwise identity), stable across repetitions.
TEST(ServerStress, OversubscribedConcurrentRunnersAreBitwiseStable) {
    ScenarioSpec spec = small_spec(2);
    spec.px = 2;
    spec.py = 2;
    spec.overlap = "split";
    const ScenarioSpec canon = canonicalize(spec);

    // Serial lockstep baseline (no TaskLayer concurrency at all).
    ScenarioSpec lockstep_spec = canon;
    lockstep_spec.overlap = "none";
    const ForecastResult lockstep =
        run_forecast(canonicalize(lockstep_spec), nullptr, true);
    ASSERT_TRUE(lockstep.ok()) << lockstep.error;

    constexpr int kRunners = 4;
    for (int rep = 0; rep < 2; ++rep) {
        std::vector<ForecastResult> got(kRunners);
        std::vector<std::thread> threads;
        threads.reserve(kRunners);
        for (int r = 0; r < kRunners; ++r) {
            threads.emplace_back([&, r] {
                // Each client thread gets its own 1-wide pool, like a
                // server worker would.
                ThreadPool pool(1);
                ThreadPool::ScopedOverride guard(pool);
                got[static_cast<std::size_t>(r)] =
                    run_forecast(canon, nullptr, true);
            });
        }
        for (auto& th : threads) th.join();
        for (int r = 0; r < kRunners; ++r) {
            const ForecastResult& res = got[static_cast<std::size_t>(r)];
            ASSERT_TRUE(res.ok())
                << "rep " << rep << " runner " << r << ": " << res.error;
            ASSERT_NE(res.state, nullptr);
            EXPECT_EQ(res.fingerprint, lockstep.fingerprint)
                << "rep " << rep << " runner " << r;
            expect_bitwise(*lockstep.state, *res.state);
        }
    }
}

// Acceptance criterion: 2x sustained overload degrades resolution, never
// drops. Capacity 4 with 2 workers, 16 distinct requests flooded in:
// depth sits at the high watermarks, so admissions land on ladder levels
// 1-2 — and every single request still completes successfully.
TEST(ServerStress, OverloadDegradesResolutionInsteadOfDropping) {
    ServerConfig cfg;
    cfg.n_workers = 2;
    cfg.queue_capacity = 4;
    cfg.cache_results = false;  // distinct executions, no dedup relief
    ForecastServer server(cfg);

    std::vector<ForecastHandle> handles;
    for (int n = 0; n < 16; ++n) {
        // Distinct horizons -> distinct products (no accidental dedup).
        handles.push_back(server.submit(envelope(small_spec(4 + 4 * n))));
    }
    int degraded = 0;
    for (std::size_t n = 0; n < handles.size(); ++n) {
        const ForecastResult& res = handles[n].wait();
        ASSERT_TRUE(res.ok()) << "request " << n << ": " << res.error;
        EXPECT_GT(res.steps_run, 0);
        if (res.degrade_level > 0) {
            ++degraded;
            // Degraded admissions ran a REDUCED product of the same
            // request: shorter horizon, and at level 2 a coarser grid.
            EXPECT_LT(res.executed.steps, 4 + 4 * static_cast<int>(n));
            if (res.degrade_level >= 2) {
                EXPECT_EQ(res.executed.coarsen, 1);
            }
        }
    }
    server.shutdown();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.shed, 0u);            // nothing dropped...
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.completed, 16u);      // ...everything answered
    EXPECT_GT(degraded, 0);               // and the ladder engaged
    EXPECT_EQ(stats.degraded, static_cast<std::uint64_t>(degraded));
}

// Soak: repeated ensemble churn through fresh servers. Every iteration
// must reproduce iteration 0's member fingerprints exactly — any drift
// or flakiness in queue/worker/channel teardown shows up here. The cron
// CI job raises ASUCA_SOAK_ITERS and runs this under TSan.
TEST(ServerSoak, RepeatedEnsembleChurnIsReproducible) {
    const int iters = soak_iters(2);
    const ScenarioSpec base_scenario = canonicalize(small_spec());
    AsucaModel<double> analysis(build_config(base_scenario));
    init_model(analysis, base_scenario);
    analysis.run(1);

    EnsembleRequest req;
    req.base = base_scenario;
    req.base.warm_start = "analysis";
    req.n_members = 4;
    req.seed = 7;
    req.amplitude = 5.0e-4;

    std::vector<std::uint64_t> first;
    for (int it = 0; it < iters; ++it) {
        ServerConfig cfg;
        cfg.n_workers = 3;
        cfg.queue_capacity = 32;
        ForecastServer server(cfg);
        server.checkpoints().capture("analysis", analysis);
        auto handles = server.submit_ensemble(req);
        // Interleave unrelated traffic so members contend with strangers.
        ForecastHandle cold = server.submit(envelope(small_spec(1)));
        std::vector<std::uint64_t> prints;
        for (auto& h : handles) {
            const ForecastResult& res = h.wait();
            ASSERT_TRUE(res.ok()) << "iter " << it << ": " << res.error;
            prints.push_back(res.fingerprint);
        }
        ASSERT_TRUE(cold.wait().ok()) << cold.wait().error;
        server.shutdown();
        if (it == 0) {
            first = prints;
        } else {
            EXPECT_EQ(prints, first) << "fingerprints drifted at iter " << it;
        }
    }
}

}  // namespace
}  // namespace asuca::server
